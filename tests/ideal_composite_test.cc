// Tests for the ideal ordering baseline and the L2 composite ordering
// prototype (the paper's Section 5 future-work direction).

#include <algorithm>

#include <gtest/gtest.h>

#include "core/distribution.h"
#include "ordering/composite.h"
#include "ordering/factory.h"
#include "ordering/ideal.h"
#include "path/selectivity.h"
#include "test_util.h"

namespace pathest {
namespace {

using testing_util::SmallGraph;

class IdealOrderingTest : public ::testing::Test {
 protected:
  IdealOrderingTest() : graph_(SmallGraph()) {
    auto map = ComputeSelectivities(graph_, 3);
    PATHEST_CHECK(map.ok(), "selectivity computation failed");
    map_ = std::make_unique<SelectivityMap>(std::move(*map));
  }

  Graph graph_;
  std::unique_ptr<SelectivityMap> map_;
};

TEST_F(IdealOrderingTest, IsABijection) {
  IdealOrdering ideal(*map_);
  for (uint64_t i = 0; i < ideal.size(); ++i) {
    EXPECT_EQ(ideal.Rank(ideal.Unrank(i)), i);
  }
}

TEST_F(IdealOrderingTest, SelectivityIsMonotoneOverIndexes) {
  IdealOrdering ideal(*map_);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < ideal.size(); ++i) {
    uint64_t f = map_->Get(ideal.Unrank(i));
    EXPECT_GE(f, prev) << "index " << i;
    prev = f;
  }
}

TEST_F(IdealOrderingTest, FactorySupportsIdeal) {
  auto ordering = MakeOrderingWithSelectivities("ideal", graph_, 3, *map_);
  ASSERT_TRUE(ordering.ok());
  EXPECT_EQ((*ordering)->name(), "ideal");
}

TEST_F(IdealOrderingTest, FactoryRejectsSpaceMismatch) {
  auto ordering = MakeOrderingWithSelectivities("ideal", graph_, 2, *map_);
  EXPECT_FALSE(ordering.ok());
}

class CompositeOrderingTest : public ::testing::Test {
 protected:
  CompositeOrderingTest() : graph_(SmallGraph()) {
    auto map = ComputeSelectivities(graph_, 4);
    PATHEST_CHECK(map.ok(), "selectivity computation failed");
    map_ = std::make_unique<SelectivityMap>(std::move(*map));
  }

  Graph graph_;
  std::unique_ptr<SelectivityMap> map_;
};

TEST_F(CompositeOrderingTest, IsABijection) {
  PathSpace space(graph_.num_labels(), 4);
  BaseLabelSet base = BaseLabelSet::UpToLength(graph_.num_labels(), 2);
  CompositeBaseOrdering ordering(space, base, *map_);
  EXPECT_EQ(ordering.name(), "sum-L2");
  for (uint64_t i = 0; i < ordering.size(); ++i) {
    EXPECT_EQ(ordering.Rank(ordering.Unrank(i)), i);
  }
}

TEST_F(CompositeOrderingTest, LengthMajorAndKeyMonotone) {
  PathSpace space(graph_.num_labels(), 3);
  BaseLabelSet base = BaseLabelSet::UpToLength(graph_.num_labels(), 2);
  CompositeBaseOrdering ordering(space, base, *map_);
  size_t prev_len = 1;
  uint64_t prev_key = 0;
  for (uint64_t i = 0; i < ordering.size(); ++i) {
    LabelPath p = ordering.Unrank(i);
    if (p.length() != prev_len) {
      EXPECT_GT(p.length(), prev_len);
      prev_len = p.length();
      prev_key = 0;
    }
    uint64_t key = ordering.SummedPieceRank(p);
    EXPECT_GE(key, prev_key) << "index " << i;
    prev_key = key;
  }
}

TEST_F(CompositeOrderingTest, FactorySupportsSumL2) {
  auto ordering = MakeOrderingWithSelectivities("sum-L2", graph_, 3, *map_);
  ASSERT_TRUE(ordering.ok());
  EXPECT_EQ((*ordering)->name(), "sum-L2");
  // Distribution still a permutation of the truth.
  auto dist = BuildDistribution(*map_, **ordering);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->size(), PathSpace(graph_.num_labels(), 3).size());
}

TEST_F(CompositeOrderingTest, FactoryRequiresLength2Coverage) {
  auto map1 = ComputeSelectivities(graph_, 1);
  ASSERT_TRUE(map1.ok());
  EXPECT_FALSE(
      MakeOrderingWithSelectivities("sum-L2", graph_, 1, *map1).ok());
}

}  // namespace
}  // namespace pathest
