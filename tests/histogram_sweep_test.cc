// Tests for the shared-stats multi-β histogram sweep engine: bit-identity
// of BuildHistogramSweep against independent per-β builds for EVERY
// histogram type on Erdős–Rényi and forest-fire path distributions, the
// single-merge-run guarantee of BuildVOptimalGreedySweep, and determinism
// of the batched MeasureAccuracySweep grid across thread counts.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/distribution.h"
#include "core/experiment.h"
#include "gen/generator.h"
#include "gen/label_assigner.h"
#include "histogram/builders.h"
#include "histogram/stats.h"
#include "ordering/factory.h"
#include "path/selectivity.h"
#include "util/random.h"

namespace pathest {
namespace {

Graph ErdosRenyiGraph(size_t num_vertices, size_t num_edges,
                      size_t num_labels, uint64_t seed) {
  UniformLabelAssigner labels(num_labels);
  ErdosRenyiParams params;
  params.num_vertices = num_vertices;
  params.num_edges = num_edges;
  params.seed = seed;
  auto g = GenerateErdosRenyi(params, &labels);
  PATHEST_CHECK(g.ok(), "Erdős–Rényi generation failed");
  return std::move(g).ValueOrDie();
}

Graph ForestFireGraph(size_t num_vertices, size_t num_labels, uint64_t seed) {
  UniformLabelAssigner labels(num_labels);
  ForestFireParams params;
  params.num_vertices = num_vertices;
  params.seed = seed;
  auto g = GenerateForestFire(params, &labels);
  PATHEST_CHECK(g.ok(), "forest fire generation failed");
  return std::move(g).ValueOrDie();
}

// The ordered path-frequency distribution of `graph` at depth k under the
// sum-based ordering — the sequence the real pipeline buckets.
std::vector<uint64_t> PathDistribution(const Graph& graph, size_t k) {
  auto map = ComputeSelectivities(graph, k);
  PATHEST_CHECK(map.ok(), "selectivity computation failed");
  auto ordering = MakeOrdering("sum-based", graph, k);
  PATHEST_CHECK(ordering.ok(), "ordering failed");
  auto dist = BuildDistribution(*map, **ordering);
  PATHEST_CHECK(dist.ok(), "distribution failed");
  return std::move(*dist);
}

void ExpectBitIdentical(const Histogram& a, const Histogram& b,
                        const char* what, size_t beta) {
  ASSERT_EQ(a.num_buckets(), b.num_buckets()) << what << " beta=" << beta;
  for (size_t i = 0; i < a.num_buckets(); ++i) {
    const Bucket& x = a.buckets()[i];
    const Bucket& y = b.buckets()[i];
    EXPECT_EQ(x.begin, y.begin) << what << " beta=" << beta << " bucket " << i;
    EXPECT_EQ(x.end, y.end) << what << " beta=" << beta << " bucket " << i;
    // Exact double equality: identical boundaries must yield identical
    // accumulated sums, bit for bit.
    EXPECT_EQ(x.sum, y.sum) << what << " beta=" << beta << " bucket " << i;
    EXPECT_EQ(x.sumsq, y.sumsq) << what << " beta=" << beta << " bucket "
                                << i;
  }
}

constexpr HistogramType kAllTypes[] = {
    HistogramType::kEquiWidth,     HistogramType::kEquiDepth,
    HistogramType::kVOptimal,      HistogramType::kVOptimalExact,
    HistogramType::kMaxDiff,       HistogramType::kEndBiased};

TEST(HistogramSweepTest, SweepMatchesPerBetaOnGraphDistributions) {
  const std::vector<std::vector<uint64_t>> distributions = {
      PathDistribution(ErdosRenyiGraph(150, 700, 4, 11), /*k=*/3),
      PathDistribution(ForestFireGraph(250, 4, 7), /*k=*/4),
  };
  for (const auto& dist : distributions) {
    DistributionStats stats(dist);
    const std::vector<size_t> betas = BetaSweep(dist.size(), 7);
    ASSERT_FALSE(betas.empty());
    for (HistogramType type : kAllTypes) {
      auto sweep = BuildHistogramSweep(type, stats, betas);
      ASSERT_TRUE(sweep.ok()) << HistogramTypeName(type);
      ASSERT_EQ(sweep->size(), betas.size());
      for (size_t b = 0; b < betas.size(); ++b) {
        auto per_beta = BuildHistogram(type, dist, betas[b]);
        ASSERT_TRUE(per_beta.ok())
            << HistogramTypeName(type) << " beta=" << betas[b];
        ExpectBitIdentical((*sweep)[b], *per_beta, HistogramTypeName(type),
                           betas[b]);
      }
    }
  }
}

TEST(HistogramSweepTest, SweepMatchesPerBetaOnRandomData) {
  Rng rng(3);
  std::vector<uint64_t> data(700);
  for (auto& v : data) v = rng.NextBounded(500);
  DistributionStats stats(data);
  // Unsorted betas, duplicates, beta > n, beta == 1, beta == n.
  const std::vector<size_t> betas = {17, 700, 1, 350, 17, 5000, 64};
  for (HistogramType type : kAllTypes) {
    auto sweep = BuildHistogramSweep(type, stats, betas);
    ASSERT_TRUE(sweep.ok()) << HistogramTypeName(type);
    ASSERT_EQ(sweep->size(), betas.size());
    for (size_t b = 0; b < betas.size(); ++b) {
      auto per_beta = BuildHistogram(type, data, betas[b]);
      ASSERT_TRUE(per_beta.ok());
      ExpectBitIdentical((*sweep)[b], *per_beta, HistogramTypeName(type),
                         betas[b]);
    }
  }
}

TEST(HistogramSweepTest, SweepRejectsZeroBucketsAndEmptyDomain) {
  std::vector<uint64_t> data = {1, 2, 3};
  DistributionStats stats(data);
  EXPECT_FALSE(BuildHistogramSweep(HistogramType::kVOptimal, stats, {2, 0})
                   .ok());
  std::vector<uint64_t> empty;
  DistributionStats empty_stats(empty);
  EXPECT_FALSE(
      BuildHistogramSweep(HistogramType::kVOptimal, empty_stats, {2}).ok());
  // Empty beta list is a no-op, not an error.
  auto none = BuildHistogramSweep(HistogramType::kVOptimal, stats, {});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(GreedySweepTest, SevenLevelSweepIsOneMergeRun) {
  Rng rng(21);
  std::vector<uint64_t> data(2048);
  for (auto& v : data) v = rng.NextBounded(300);
  DistributionStats stats(data);
  const std::vector<size_t> betas = BetaSweep(data.size(), 7);
  ASSERT_EQ(betas.size(), 7u);

  GreedyMergeMetrics metrics;
  auto sweep = BuildVOptimalGreedySweep(stats, betas, &metrics);
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(metrics.merge_runs, 1u);
  // One pass from n singletons down to the smallest requested level.
  EXPECT_EQ(metrics.merges, data.size() - betas.back());

  for (size_t b = 0; b < betas.size(); ++b) {
    auto independent = BuildVOptimalGreedy(data, betas[b]);
    ASSERT_TRUE(independent.ok());
    EXPECT_EQ((*sweep)[b].num_buckets(), betas[b]);
    ExpectBitIdentical((*sweep)[b], *independent, "v-optimal", betas[b]);
  }
}

TEST(MeasureAccuracySweepTest, DeterministicAcrossThreadCounts) {
  Graph graph = ErdosRenyiGraph(120, 500, 4, 5);
  const size_t k = 3;
  auto map = ComputeSelectivities(graph, k);
  ASSERT_TRUE(map.ok());
  PathSpace space(graph.num_labels(), k);
  const std::vector<size_t> betas = BetaSweep(space.size(), 5);
  std::vector<std::string> orderings = PaperOrderingNames();
  orderings.push_back("ideal");

  auto baseline = MeasureAccuracySweep(graph, *map, orderings, k, betas,
                                       HistogramType::kVOptimal,
                                       /*num_threads=*/1);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->size(), orderings.size() * betas.size());

  for (size_t threads : {2u, 4u}) {
    auto grid = MeasureAccuracySweep(graph, *map, orderings, k, betas,
                                     HistogramType::kVOptimal, threads);
    ASSERT_TRUE(grid.ok()) << "threads=" << threads;
    ASSERT_EQ(grid->size(), baseline->size());
    for (size_t i = 0; i < grid->size(); ++i) {
      const AccuracyResult& a = (*baseline)[i];
      const AccuracyResult& b = (*grid)[i];
      EXPECT_EQ(a.ordering, b.ordering) << "threads=" << threads;
      EXPECT_EQ(a.beta, b.beta);
      // Accuracy payloads must be bit-identical at any thread count; only
      // the wall-clock build_ms field may differ.
      EXPECT_EQ(a.sse, b.sse) << a.ordering << " beta=" << a.beta;
      EXPECT_EQ(a.errors.num_queries, b.errors.num_queries);
      EXPECT_EQ(a.errors.mean_abs_error, b.errors.mean_abs_error)
          << a.ordering << " beta=" << a.beta << " threads=" << threads;
      EXPECT_EQ(a.errors.median_abs_error, b.errors.median_abs_error);
      EXPECT_EQ(a.errors.p90_abs_error, b.errors.p90_abs_error);
      EXPECT_EQ(a.errors.max_abs_error, b.errors.max_abs_error);
      EXPECT_EQ(a.errors.exact_fraction, b.errors.exact_fraction);
    }
  }
}

TEST(MeasureAccuracySweepTest, AgreesWithPerCellMeasureAccuracy) {
  Graph graph = ErdosRenyiGraph(100, 400, 3, 9);
  const size_t k = 3;
  auto map = ComputeSelectivities(graph, k);
  ASSERT_TRUE(map.ok());
  PathSpace space(graph.num_labels(), k);
  const std::vector<size_t> betas = BetaSweep(space.size(), 4);

  auto grid = MeasureAccuracySweep(graph, *map, {"sum-based"}, k, betas,
                                   HistogramType::kVOptimal);
  ASSERT_TRUE(grid.ok());
  for (size_t b = 0; b < betas.size(); ++b) {
    auto cell = MeasureAccuracy(graph, *map, "sum-based", k, betas[b],
                                HistogramType::kVOptimal);
    ASSERT_TRUE(cell.ok());
    // Identical histogram => identical SSE; the error summaries agree up
    // to summation order (the sweep walks the domain, the per-cell path
    // walks canonical path order).
    EXPECT_EQ((*grid)[b].sse, cell->sse) << "beta=" << betas[b];
    EXPECT_EQ((*grid)[b].errors.num_queries, cell->errors.num_queries);
    EXPECT_NEAR((*grid)[b].errors.mean_abs_error,
                cell->errors.mean_abs_error, 1e-12);
    EXPECT_EQ((*grid)[b].errors.max_abs_error, cell->errors.max_abs_error);
  }
}

TEST(MeasureAccuracySweepTest, UnknownOrderingReportsFailure) {
  Graph graph = ErdosRenyiGraph(60, 200, 3, 2);
  auto map = ComputeSelectivities(graph, 2);
  ASSERT_TRUE(map.ok());
  auto grid = MeasureAccuracySweep(graph, *map, {"sum-based", "nope"}, 2,
                                   {4}, HistogramType::kEquiWidth);
  EXPECT_FALSE(grid.ok());
}

TEST(MeasureTimingSweepTest, GridShapeAndCalls) {
  Graph graph = ErdosRenyiGraph(80, 300, 3, 4);
  const size_t k = 3;
  auto map = ComputeSelectivities(graph, k);
  ASSERT_TRUE(map.ok());
  PathSpace space(graph.num_labels(), k);
  const std::vector<size_t> betas = BetaSweep(space.size(), 3);
  const std::vector<std::string> orderings = {"num-alph", "sum-based"};

  auto grid = MeasureTimingSweep(graph, *map, orderings, k, betas,
                                 HistogramType::kVOptimal, /*repetitions=*/2);
  ASSERT_TRUE(grid.ok());
  ASSERT_EQ(grid->size(), orderings.size() * betas.size());
  for (size_t o = 0; o < orderings.size(); ++o) {
    for (size_t b = 0; b < betas.size(); ++b) {
      const TimingResult& cell = (*grid)[o * betas.size() + b];
      EXPECT_EQ(cell.beta, betas[b]);
      EXPECT_EQ(cell.calls, 2 * space.size());
      EXPECT_GE(cell.avg_estimate_us, 0.0);
    }
  }
}

}  // namespace
}  // namespace pathest
