// Tests for the query-time serving engine: scratch-based Rank fast paths
// (fast vs legacy bit-identity over whole domains), the FlatHistogram SoA
// lookup, the Estimator batch APIs (serial / parallel bit-identity), the
// footprint accounting, and the allocation-free guarantee of the fast path
// (via a global operator-new counting hook).

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/path_histogram.h"
#include "core/workload.h"
#include "histogram/builders.h"
#include "histogram/flat_histogram.h"
#include "ordering/factory.h"
#include "ordering/sum_based.h"
#include "test_util.h"

// ---------------------------------------------------------------------------
// Allocation-counting test hook: replace the global allocation functions and
// count every heap allocation made by this binary. The fast-path test warms
// a scratch, snapshots the counter, runs thousands of estimates, and asserts
// the counter did not move — the "zero heap allocations per call" acceptance
// criterion, enforced rather than eyeballed.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pathest {
namespace {

// Small deliberately non-monotone cardinalities, as in the ordering
// property tests, so alphabetical and cardinality rankings differ.
Graph TestGraph(size_t num_labels) {
  std::vector<std::pair<std::string, uint64_t>> cards;
  for (size_t i = 0; i < num_labels; ++i) {
    cards.push_back({std::to_string(i + 1), 10 + ((i * 37 + 13) % 100) * 3});
  }
  return testing_util::GraphWithCardinalities(cards);
}

// A deterministic, skewed frequency sequence (no selectivity pipeline
// needed; estimation cost does not depend on the values).
std::vector<uint64_t> SyntheticDistribution(uint64_t n) {
  std::vector<uint64_t> data(n);
  for (uint64_t i = 0; i < n; ++i) data[i] = (i * i + 7 * i) % 101;
  return data;
}

// Builds a served PathHistogram over `ordering` with a v-optimal histogram
// of `beta` buckets on the synthetic distribution.
Result<PathHistogram> BuildServed(OrderingPtr ordering, size_t beta) {
  auto histogram = BuildHistogram(HistogramType::kVOptimal,
                                  SyntheticDistribution(ordering->size()),
                                  beta);
  if (!histogram.ok()) return histogram.status();
  return PathHistogram::FromParts(std::move(ordering), std::move(*histogram),
                                  HistogramType::kVOptimal);
}

// --------------------------------------------------------------- round trip

// (method, k): every factory ordering × k ∈ {2, 3, 4} over a small |L|.
using RoundTripParam = std::tuple<std::string, size_t>;

class FastPathRoundTripTest
    : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(FastPathRoundTripTest, FastRankMatchesLegacyOverEveryDomainIndex) {
  const auto& [method, k] = GetParam();
  Graph graph = TestGraph(5);
  auto ordering = MakeOrdering(method, graph, k);
  ASSERT_TRUE(ordering.ok()) << ordering.status().ToString();

  auto served = BuildServed(std::move(*ordering), 16);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  const Ordering& ord = served->ordering();
  const Estimator estimator(*served);

  RankScratch scratch;
  scratch.Reserve(ord.space().num_labels());
  for (uint64_t i = 0; i < ord.size(); ++i) {
    const LabelPath p = ord.Unrank(i);
    // Legacy, virtual scratch overload, and the estimator's type-tagged
    // dispatch must all agree on every single index.
    ASSERT_EQ(ord.Rank(p), i) << method << " k=" << k;
    ASSERT_EQ(ord.Rank(p, scratch), i) << method << " k=" << k;
    ASSERT_EQ(estimator.Rank(p, scratch), i) << method << " k=" << k;
  }
}

TEST_P(FastPathRoundTripTest, SumBasedScratchUnrankMatchesLegacy) {
  const auto& [method, k] = GetParam();
  if (method != "sum-based" && method != "sum-alph") {
    GTEST_SKIP() << "scratch Unrank twin is sum-based-specific";
  }
  Graph graph = TestGraph(5);
  auto ordering = MakeOrdering(method, graph, k);
  ASSERT_TRUE(ordering.ok());
  auto* sum = dynamic_cast<const SumBasedOrdering*>(ordering->get());
  ASSERT_NE(sum, nullptr);
  RankScratch scratch;
  for (uint64_t i = 0; i < sum->size(); ++i) {
    ASSERT_EQ(sum->Unrank(i, scratch), sum->Unrank(i)) << method << " " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFactoryOrderings, FastPathRoundTripTest,
    ::testing::Combine(
        ::testing::Values("num-alph", "num-card", "lex-alph", "lex-card",
                          "sum-based", "sum-alph", "gray-alph", "gray-card",
                          "random"),
        ::testing::Values(2, 3, 4)),
    [](const ::testing::TestParamInfo<RoundTripParam>& info) {
      std::string name = std::get<0>(info.param) + "_k" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The legacy sum-based Rank kept a fixed 64-entry count buffer on the
// stack; |L| > 64 used to write out of bounds. Regression: a 70-label set
// must round-trip on both paths.
TEST(SumBasedManyLabelsTest, SeventyLabelRoundTrip) {
  Graph graph = TestGraph(70);
  auto ordering = MakeOrdering("sum-based", graph, 2);
  ASSERT_TRUE(ordering.ok());
  RankScratch scratch;
  for (uint64_t i = 0; i < (*ordering)->size(); ++i) {
    const LabelPath p = (*ordering)->Unrank(i);
    ASSERT_EQ((*ordering)->Rank(p), i);
    ASSERT_EQ((*ordering)->Rank(p, scratch), i);
  }
}

// ------------------------------------------------------------ flat lookup

TEST(FlatHistogramTest, PointEstimatesBitIdenticalToHistogram) {
  const std::vector<uint64_t> data = SyntheticDistribution(1000);
  for (size_t beta : {1, 2, 7, 32, 333}) {
    auto h = BuildHistogram(HistogramType::kVOptimal, data, beta);
    ASSERT_TRUE(h.ok());
    FlatHistogram flat(*h);
    ASSERT_EQ(flat.num_buckets(), h->num_buckets());
    ASSERT_EQ(flat.domain_size(), h->domain_size());
    for (uint64_t i = 0; i < h->domain_size(); ++i) {
      // Bit-identical: same division, performed once at build time.
      ASSERT_EQ(flat.EstimatePoint(i), h->Estimate(i)) << "beta=" << beta
                                                       << " i=" << i;
    }
  }
}

TEST(FlatHistogramTest, RangeEstimatesMatchHistogramUpToRounding) {
  const std::vector<uint64_t> data = SyntheticDistribution(500);
  auto h = BuildHistogram(HistogramType::kEquiDepth, data, 17);
  ASSERT_TRUE(h.ok());
  FlatHistogram flat(*h);
  for (uint64_t begin = 0; begin <= 500; begin += 13) {
    for (uint64_t end = begin; end <= 500; end += 29) {
      const double expect = h->EstimateRange(begin, end);
      const double got = flat.EstimateRange(begin, end);
      // The flat path sums interior buckets through a prefix array, which
      // associates the additions differently — equal up to FP rounding.
      ASSERT_NEAR(got, expect, 1e-9 * (1.0 + std::abs(expect)))
          << "[" << begin << ", " << end << ")";
    }
  }
  EXPECT_EQ(flat.EstimateRange(0, 0), 0.0);
  EXPECT_EQ(flat.EstimateRange(500, 500), 0.0);
}

TEST(FlatHistogramTest, FindBucketAgreesWithBucketFor) {
  const std::vector<uint64_t> data = SyntheticDistribution(257);
  auto h = BuildHistogram(HistogramType::kMaxDiff, data, 9);
  ASSERT_TRUE(h.ok());
  FlatHistogram flat(*h);
  for (uint64_t i = 0; i < h->domain_size(); ++i) {
    const Bucket& b = h->BucketFor(i);
    EXPECT_EQ(h->buckets()[flat.FindBucket(i)].begin, b.begin) << i;
  }
}

TEST(HistogramFootprintTest, ReportsDiagnosticAndEstimatorBytes) {
  const std::vector<uint64_t> data = SyntheticDistribution(100);
  auto h = BuildHistogram(HistogramType::kEquiWidth, data, 10);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->num_buckets(), 10u);
  // Diagnostic: the full 32-byte Bucket (begin, end, sum, sumsq) — what the
  // build side holds and what serialization writes.
  EXPECT_EQ(h->ApproxBytes(), 10 * sizeof(Bucket));
  EXPECT_EQ(sizeof(Bucket), 32u);
  // Estimator-resident: the flat SoA rows (begin + mean + prefix mass,
  // one prefix entry extra) plus the Eytzinger boundary index.
  FlatHistogram flat(*h);
  EXPECT_EQ(flat.ResidentBytes(),
            10 * (sizeof(uint64_t) + sizeof(double)) +   // begin_, mean_
                11 * sizeof(double) +                    // prefix_sum_
                11 * (sizeof(uint64_t) + sizeof(uint32_t)));  // eytz rows
  EXPECT_LT(flat.ResidentBytes(), h->ApproxBytes() * 2);
}

// ------------------------------------------------------------- batch APIs

class EstimateBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Graph graph = TestGraph(6);
    auto ordering = MakeOrdering("sum-based", graph, 3);
    ASSERT_TRUE(ordering.ok());
    space_ = std::make_unique<PathSpace>((*ordering)->space());
    auto served = BuildServed(std::move(*ordering), 24);
    ASSERT_TRUE(served.ok());
    served_ = std::make_unique<PathHistogram>(std::move(*served));
    workload_ = AllPathsWorkload(*space_);
  }

  std::unique_ptr<PathSpace> space_;
  std::unique_ptr<PathHistogram> served_;
  std::vector<LabelPath> workload_;
};

TEST_F(EstimateBatchTest, SerialBatchMatchesLegacyEstimates) {
  const Estimator estimator(*served_);
  std::vector<double> out(workload_.size());
  estimator.EstimateBatch(workload_, out);
  for (size_t i = 0; i < workload_.size(); ++i) {
    ASSERT_EQ(out[i], served_->Estimate(workload_[i])) << i;
  }
}

TEST_F(EstimateBatchTest, ParallelBatchBitIdenticalToSerialAtEveryWidth) {
  const Estimator estimator(*served_);
  std::vector<double> serial(workload_.size());
  estimator.EstimateBatch(workload_, serial);
  for (size_t threads : {1, 2, 4}) {
    std::vector<double> parallel(workload_.size());
    estimator.EstimateBatchParallel(workload_, parallel, threads);
    for (size_t i = 0; i < workload_.size(); ++i) {
      ASSERT_EQ(parallel[i], serial[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST_F(EstimateBatchTest, IndexRangeGoesThroughFlatPrefixSums) {
  const Estimator estimator(*served_);
  const uint64_t n = estimator.flat().domain_size();
  const double whole = estimator.EstimateIndexRange(0, n);
  const double split = estimator.EstimateIndexRange(0, n / 2) +
                       estimator.EstimateIndexRange(n / 2, n);
  EXPECT_NEAR(whole, split, 1e-9 * (1.0 + std::abs(whole)));
  EXPECT_NEAR(whole, served_->EstimateIndexRange(0, n),
              1e-9 * (1.0 + std::abs(whole)));
}

TEST_F(EstimateBatchTest, ResidentBytesIsTheFlatFootprint) {
  const Estimator estimator(*served_);
  EXPECT_EQ(estimator.ResidentBytes(), estimator.flat().ResidentBytes());
  EXPECT_GT(estimator.ResidentBytes(), 0u);
}

// ------------------------------------------------------- allocation-free

TEST(AllocationFreeTest, FastPathRankAndEstimateDoNotAllocate) {
  Graph graph = TestGraph(6);
  for (const char* method : {"num-alph", "num-card", "lex-alph", "lex-card",
                             "sum-based", "sum-alph", "gray-alph", "gray-card",
                             "random"}) {
    auto ordering = MakeOrdering(method, graph, 4);
    ASSERT_TRUE(ordering.ok());
    auto served = BuildServed(std::move(*ordering), 32);
    ASSERT_TRUE(served.ok());
    const Estimator estimator(*served);

    // Materialize the workload and warm the scratch BEFORE counting.
    std::vector<LabelPath> workload;
    const PathSpace& space = estimator.ordering().space();
    for (uint64_t i = 0; i < space.size(); i += 7) {
      workload.push_back(space.CanonicalPath(i));
    }
    RankScratch scratch;
    scratch.Reserve(estimator.num_labels());
    double sink = estimator.Estimate(workload[0], scratch);

    const uint64_t before =
        g_allocation_count.load(std::memory_order_relaxed);
    for (int rep = 0; rep < 3; ++rep) {
      for (const LabelPath& path : workload) {
        sink += estimator.Estimate(path, scratch);
      }
    }
    const uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << method << ": fast-path estimation allocated on the heap";
    EXPECT_GE(sink, 0.0);  // keep the loop alive
  }
}

// The serial batch API is equally allocation-free after its internal
// scratch warms up — per the contract there is exactly one Reserve per
// call, so we count a full batch against a one-element baseline.
TEST(AllocationFreeTest, BatchCostIsIndependentOfBatchSize) {
  Graph graph = TestGraph(6);
  auto ordering = MakeOrdering("sum-based", graph, 4);
  ASSERT_TRUE(ordering.ok());
  auto served = BuildServed(std::move(*ordering), 32);
  ASSERT_TRUE(served.ok());
  const Estimator estimator(*served);
  const PathSpace& space = estimator.ordering().space();

  std::vector<LabelPath> small(1, space.CanonicalPath(0));
  std::vector<LabelPath> large;
  for (uint64_t i = 0; i < space.size(); i += 3) {
    large.push_back(space.CanonicalPath(i));
  }
  std::vector<double> out_small(small.size());
  std::vector<double> out_large(large.size());

  const uint64_t before_small =
      g_allocation_count.load(std::memory_order_relaxed);
  estimator.EstimateBatch(small, out_small);
  const uint64_t cost_small =
      g_allocation_count.load(std::memory_order_relaxed) - before_small;

  const uint64_t before_large =
      g_allocation_count.load(std::memory_order_relaxed);
  estimator.EstimateBatch(large, out_large);
  const uint64_t cost_large =
      g_allocation_count.load(std::memory_order_relaxed) - before_large;

  // The only allocation either call may perform is its scratch Reserve;
  // per-query work must contribute nothing.
  EXPECT_EQ(cost_large, cost_small);
}

}  // namespace
}  // namespace pathest
