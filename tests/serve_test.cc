// Tests for the estimation service (serve/): the wire protocol, the
// bounded admission queue, server lifecycle, typed error taxonomy,
// deadlines, load shedding, degraded-mode startup and reload — and the
// torture test: concurrent estimate clients racing a reload storm with
// injected corruption, where every response must be bit-identical to a
// serial oracle of SOME published catalog version (atomic snapshot
// pinning: never a torn mix), and every failure must be a typed error.

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialize.h"
#include "ordering/factory.h"
#include "path/label_path.h"
#include "path/selectivity.h"
#include "serve/bounded_queue.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "test_util.h"
#include "util/fault_injection.h"

namespace pathest {
namespace serve {
namespace {

using testing_util::SmallGraph;

// ---------------------------------------------------------------------------
// Protocol unit tests (no sockets).

TEST(ProtocolTest, ParsesCommandOptionsAndArgs) {
  auto req = ParseRequest("estimate deadline_ms=250 probe a/b c");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->command, "estimate");
  EXPECT_EQ(req->Option("deadline_ms"), "250");
  ASSERT_EQ(req->args.size(), 3u);
  EXPECT_EQ(req->args[0], "probe");
  EXPECT_EQ(req->args[1], "a/b");
  EXPECT_EQ(req->args[2], "c");
}

TEST(ProtocolTest, OptionsStopAtFirstPositional) {
  // key=value AFTER a positional is a positional (a path may contain '=').
  auto req = ParseRequest("estimate probe x=1");
  ASSERT_TRUE(req.ok());
  EXPECT_TRUE(req->options.empty());
  ASSERT_EQ(req->args.size(), 2u);
  EXPECT_EQ(req->args[1], "x=1");
}

TEST(ProtocolTest, RejectsEmptyAndMalformed) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("   ").ok());
  EXPECT_FALSE(ParseRequest("estimate =bare").ok());
}

TEST(ProtocolTest, RetriabilityTaxonomy) {
  EXPECT_TRUE(IsRetriableCode(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsRetriableCode(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsRetriableCode(StatusCode::kUnavailable));
  EXPECT_FALSE(IsRetriableCode(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetriableCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetriableCode(StatusCode::kIOError));
}

TEST(ProtocolTest, ErrorResponsesAreOneSanitizedLine) {
  const std::string line =
      FormatErrorResponse(Status::NotFound("multi\nline\rmessage"));
  EXPECT_EQ(line.rfind("err NotFound fatal ", 0), 0u) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.find('\r'), std::string::npos);

  const std::string shed =
      FormatErrorResponse(Status::ResourceExhausted("queue full"));
  EXPECT_EQ(shed, "err ResourceExhausted retriable queue full");
}

TEST(ProtocolTest, EstimateValuesRoundTripExactly) {
  for (double v : {0.0, 1.0, 1.0 / 3.0, 127.76923076923077, 1e300, 6.25e-4}) {
    std::string s;
    AppendEstimateValue(&s, v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

TEST(ProtocolTest, ParseU64OptionValidation) {
  auto ok = ParseU64Option("ms", "250");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 250u);
  EXPECT_FALSE(ParseU64Option("ms", "").ok());
  EXPECT_FALSE(ParseU64Option("ms", "12x").ok());
  EXPECT_FALSE(ParseU64Option("ms", "-1").ok());
  EXPECT_FALSE(ParseU64Option("ms", "99999999999999999999999").ok());
}

// ---------------------------------------------------------------------------
// Bounded queue.

TEST(BoundedQueueTest, ShedsWhenFullAndDrainsAfterStop) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: the caller sheds
  q.Stop();
  EXPECT_FALSE(q.TryPush(4));  // stopped: rejected
  // A stopped queue still hands out what it holds — that is what lets
  // shutdown answer queued connections instead of dropping them.
  auto a = q.Pop();
  auto b = q.Pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(q.Pop().has_value());  // stopped AND empty
}

TEST(BoundedQueueTest, StopWakesBlockedConsumers) {
  BoundedQueue<int> q(4);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (q.Pop().has_value()) {
      }
      woke.fetch_add(1);
    });
  }
  q.TryPush(7);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  q.Stop();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(BoundedQueueTest, ConcurrentProducersAndConsumersLoseNothing) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 200;
  std::atomic<int> consumed{0};
  std::atomic<int> pushed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = i;  // TryPush takes an rvalue; a failed push leaves it
        while (!q.TryPush(std::move(item))) std::this_thread::yield();
        pushed.fetch_add(1);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (q.Pop().has_value()) consumed.fetch_add(1);
    });
  }
  // Let producers finish, then stop; consumers must drain every item.
  for (int i = 0; i < 2; ++i) threads[i].join();
  q.Stop();
  for (size_t i = 2; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(pushed.load(), 2 * kPerProducer);
  EXPECT_EQ(consumed.load(), 2 * kPerProducer);
}

// ---------------------------------------------------------------------------
// Server fixture: catalogs on disk, a serial oracle, and short-path
// sockets under a per-test temp root.

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : graph_(SmallGraph()) {
    auto truth = ComputeSelectivities(graph_, 3);
    PATHEST_CHECK(truth.ok(), "selectivities failed");
    truth_ = std::make_unique<SelectivityMap>(std::move(*truth));
    static std::atomic<int> counter{0};
    root_ = std::filesystem::temp_directory_path() /
            ("pathest_serve_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(root_);
  }

  ~ServeTest() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  // Writes `<dir>/<name>.stats` built with the given knobs; different
  // (type, beta) pairs yield observably different estimators, which is how
  // the reload tests tell catalog versions apart.
  std::filesystem::path WriteEntry(const std::filesystem::path& dir,
                                   const std::string& name, size_t beta,
                                   HistogramType type,
                                   CatalogFormat format =
                                       CatalogFormat::kBinary) {
    std::filesystem::create_directories(dir);
    auto ordering = MakeOrdering("sum-based", graph_, 3);
    PATHEST_CHECK(ordering.ok(), "ordering failed");
    auto est = PathHistogram::Build(*truth_, std::move(*ordering), type, beta);
    PATHEST_CHECK(est.ok(), "estimator build failed");
    const std::filesystem::path file = dir / (name + ".stats");
    PATHEST_CHECK(
        SavePathHistogram(*est, graph_, file.string(), format).ok(),
        "save failed");
    return file;
  }

  // The serial oracle: the exact response line a correct server must
  // produce for `estimate <entry> paths...` served from `stats_file`.
  std::string OracleResponse(const std::filesystem::path& stats_file,
                             const std::vector<std::string>& paths) {
    auto loaded = LoadPathHistogram(stats_file.string());
    PATHEST_CHECK(loaded.ok(), "oracle load failed");
    Estimator serving(loaded->estimator);
    RankScratch scratch;
    scratch.Reserve(serving.num_labels());
    std::string out = "ok";
    for (const std::string& text : paths) {
      auto path = LabelPath::Parse(text, loaded->labels);
      PATHEST_CHECK(path.ok(), "oracle path parse failed");
      out += ' ';
      AppendEstimateValue(&out, serving.Estimate(*path, scratch));
    }
    return out;
  }

  ServeOptions BaseOptions(const std::filesystem::path& dir) {
    ServeOptions options;
    options.socket_path = (root_ / "s.sock").string();
    options.catalog_dir = dir.string();
    options.num_workers = 2;
    options.queue_capacity = 8;
    return options;
  }

  ServeClient Connect(const ServeServer& server) {
    auto client = ServeClient::Connect(server.options().socket_path);
    PATHEST_CHECK(client.ok(), "client connect failed");
    return std::move(*client);
  }

  static void CorruptFile(const std::filesystem::path& file) {
    auto bytes = ReadFileBytes(file.string());
    PATHEST_CHECK(bytes.ok(), "read for corruption failed");
    PATHEST_CHECK(FlipBit(&*bytes, bytes->size() / 2, 3).ok(), "flip failed");
    PATHEST_CHECK(WriteFileBytes(file.string(), *bytes).ok(),
                  "write corrupt failed");
  }

  Graph graph_;
  std::unique_ptr<SelectivityMap> truth_;
  std::filesystem::path root_;
};

TEST_F(ServeTest, ServesEstimatesBitIdenticalToSerialOracle) {
  const auto file =
      WriteEntry(root_ / "cat", "alpha", 6, HistogramType::kVOptimal);
  const std::vector<std::string> paths = {"a", "a/b", "a/b/c", "c"};
  const std::string oracle = OracleResponse(file, paths);

  ServeServer server(BaseOptions(root_ / "cat"));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = Connect(server);

  auto health = client.Call("health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, "ok serving entries=1 degraded=0 version=1");

  auto resp = client.Call("estimate alpha a a/b a/b/c c");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, oracle);

  auto bye = client.Call("shutdown");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(*bye, "ok draining");
  server.Wait();
  EXPECT_GE(server.counters().requests.load(), 3u);
}

TEST_F(ServeTest, MappedV2EntriesServeBitIdenticalAndRepinOnReload) {
  // One binary-v2 entry (served zero-copy through the mmap cache) next to
  // one v1 entry (copying load): both must answer bit-identically to the
  // serial oracle, stats must tell the storage forms apart, and a reload
  // of unchanged files must RE-PIN the v2 mapping (a cache hit) rather
  // than re-read it.
  const auto v2_file = WriteEntry(root_ / "cat", "zed", 6,
                                  HistogramType::kVOptimal,
                                  CatalogFormat::kBinaryV2);
  const auto v1_file =
      WriteEntry(root_ / "cat", "old", 4, HistogramType::kEquiWidth);
  const std::vector<std::string> paths = {"a", "a/b", "a/b/c", "c"};
  const std::string v2_oracle = OracleResponse(v2_file, paths);
  const std::string v1_oracle = OracleResponse(v1_file, paths);

  ServeServer server(BaseOptions(root_ / "cat"));
  ASSERT_TRUE(server.Start().ok());
  {
    const auto state = server.registry_state();
    ASSERT_EQ(state->entries.size(), 2u);
    const auto& zed = state->entries.at("zed");
    const auto& old = state->entries.at("old");
    EXPECT_TRUE(zed->is_mapped());
    EXPECT_GT(zed->mapped_bytes(), 0u);
    EXPECT_LT(zed->resident_bytes(), zed->mapped_bytes());
    EXPECT_FALSE(old->is_mapped());
    EXPECT_EQ(old->mapped_bytes(), 0u);
    EXPECT_GT(old->resident_bytes(), 0u);
  }

  ServeClient client = Connect(server);
  auto v2_resp = client.Call("estimate zed a a/b a/b/c c");
  ASSERT_TRUE(v2_resp.ok());
  EXPECT_EQ(*v2_resp, v2_oracle);
  auto v1_resp = client.Call("estimate old a a/b a/b/c c");
  ASSERT_TRUE(v1_resp.ok());
  EXPECT_EQ(*v1_resp, v1_oracle);

  auto stats = client.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"mapped\":true"), std::string::npos);
  EXPECT_NE(stats->find("\"mapped\":false"), std::string::npos);
  EXPECT_NE(stats->find("\"mmap_cache\":{\"entries\":1"), std::string::npos);

  // Unchanged files: the reload's v2 open must be a hit on the same
  // mapping, and estimates stay bit-identical afterwards.
  auto reload = client.Call("reload");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->rfind("ok loaded=2", 0), 0u) << *reload;
  stats = client.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"hits\":1"), std::string::npos) << *stats;
  v2_resp = client.Call("estimate zed a a/b a/b/c c");
  ASSERT_TRUE(v2_resp.ok());
  EXPECT_EQ(*v2_resp, v2_oracle);

  // A REWRITTEN v2 file is a new generation: reload swaps it in (a miss,
  // not a hit) and serving follows the new bytes.
  WriteEntry(root_ / "cat", "zed", 9, HistogramType::kVOptimal,
             CatalogFormat::kBinaryV2);
  const std::string new_oracle =
      OracleResponse(root_ / "cat" / "zed.stats", paths);
  reload = client.Call("reload");
  ASSERT_TRUE(reload.ok());
  v2_resp = client.Call("estimate zed a a/b a/b/c c");
  ASSERT_TRUE(v2_resp.ok());
  EXPECT_EQ(*v2_resp, new_oracle);

  auto bye = client.Call("shutdown");
  ASSERT_TRUE(bye.ok());
  server.Wait();
}

TEST_F(ServeTest, FatalErrorsAreTypedAndKeepTheConnectionOpen) {
  WriteEntry(root_ / "cat", "alpha", 6, HistogramType::kVOptimal);
  ServeServer server(BaseOptions(root_ / "cat"));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = Connect(server);

  auto missing = client.Call("estimate nosuch a");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->rfind("err NotFound fatal ", 0), 0u) << *missing;

  auto bad_path = client.Call("estimate alpha not-a-label");
  ASSERT_TRUE(bad_path.ok());
  EXPECT_EQ(bad_path->rfind("err InvalidArgument fatal ", 0), 0u) << *bad_path;

  auto bad_cmd = client.Call("frobnicate");
  ASSERT_TRUE(bad_cmd.ok());
  EXPECT_EQ(bad_cmd->rfind("err InvalidArgument fatal ", 0), 0u) << *bad_cmd;

  auto bad_opt = client.Call("estimate deadline_ms=soon alpha a");
  ASSERT_TRUE(bad_opt.ok());
  EXPECT_EQ(bad_opt->rfind("err InvalidArgument fatal ", 0), 0u) << *bad_opt;

  // slowop is refused when test commands are disabled (the default).
  auto refused = client.Call("slowop ms=1");
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->rfind("err InvalidArgument fatal ", 0), 0u) << *refused;

  // Five fatal errors later, the SAME connection still serves. Only the
  // malformed REQUESTS (unknown command, bad option, refused slowop)
  // count as invalid; NotFound/bad-path are well-formed requests that
  // failed.
  auto health = client.Call("health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->rfind("ok serving ", 0), 0u) << *health;
  EXPECT_EQ(server.counters().invalid_requests.load(), 3u);
}

TEST_F(ServeTest, DeadlineExpiryIsRetriableDeadlineExceeded) {
  WriteEntry(root_ / "cat", "alpha", 6, HistogramType::kVOptimal);
  ServeServer server(BaseOptions(root_ / "cat"));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = Connect(server);

  // deadline_ms=0 has already expired at the first between-chunk check —
  // the deterministic way to exercise expiry without a huge workload.
  auto resp = client.Call("estimate deadline_ms=0 alpha a a/b");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->rfind("err DeadlineExceeded retriable ", 0), 0u) << *resp;
  EXPECT_EQ(server.counters().deadline_exceeded.load(), 1u);

  // The expiry poisoned nothing: the next request on the same connection
  // (and the same worker scratch) serves normally.
  auto again = client.Call("estimate alpha a");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rfind("ok ", 0), 0u) << *again;
}

TEST_F(ServeTest, OversizedRequestLineDrawsTypedErrorAndCloses) {
  WriteEntry(root_ / "cat", "alpha", 6, HistogramType::kVOptimal);
  ServeServer server(BaseOptions(root_ / "cat"));
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectUnixSocket(server.options().socket_path);
  ASSERT_TRUE(fd.ok());
  // More bytes than kMaxRequestBytes with no newline: a protocol
  // violation, not a request. SendAll may fail midway once the server
  // gives up and closes; the error line is still readable.
  std::string big(kMaxRequestBytes + 2, 'a');
  SendAll(fd->get(), big);
  LineReader reader(fd->get(), /*idle_timeout_ms=*/10000, kMaxRequestBytes);
  std::string line;
  ASSERT_EQ(reader.ReadLine(&line), ReadLineResult::kLine);
  EXPECT_EQ(line.rfind("err InvalidArgument fatal ", 0), 0u) << line;
  EXPECT_EQ(reader.ReadLine(&line), ReadLineResult::kEof);
}

TEST_F(ServeTest, FullQueueShedsWithRetriableError) {
  WriteEntry(root_ / "cat", "alpha", 6, HistogramType::kVOptimal);
  ServeOptions options = BaseOptions(root_ / "cat");
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.enable_test_commands = true;
  ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // A occupies the only worker (slowop holds it), B fills the only queue
  // slot, so C MUST be shed at accept with the typed retriable error.
  auto a = ConnectUnixSocket(options.socket_path);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(SendAll(a->get(), "slowop ms=2000\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto b = ConnectUnixSocket(options.socket_path);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(SendAll(b->get(), "health\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  ServeClient c = Connect(server);
  auto shed = c.Call("health");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->rfind("err ResourceExhausted retriable ", 0), 0u) << *shed;
  EXPECT_EQ(server.counters().connections_shed.load(), 1u);

  // A's slowop completes; once A DISCONNECTS (a worker owns a connection
  // for its lifetime), B is served from the queue: shedding rejected the
  // overflow, not the queued work.
  LineReader read_a(a->get(), 10000, kMaxRequestBytes);
  std::string line;
  ASSERT_EQ(read_a.ReadLine(&line), ReadLineResult::kLine);
  EXPECT_EQ(line, "ok slept");
  a->reset();
  LineReader read_b(b->get(), 10000, kMaxRequestBytes);
  ASSERT_EQ(read_b.ReadLine(&line), ReadLineResult::kLine);
  EXPECT_EQ(line.rfind("ok serving ", 0), 0u) << line;
}

TEST_F(ServeTest, StartsDegradedWhenAnEntryIsCorrupt) {
  WriteEntry(root_ / "cat", "alpha", 6, HistogramType::kVOptimal);
  const auto broken =
      WriteEntry(root_ / "cat", "broken", 4, HistogramType::kEquiWidth);
  CorruptFile(broken);

  ServeServer server(BaseOptions(root_ / "cat"));
  ASSERT_TRUE(server.Start().ok());  // degraded start beats no start
  ASSERT_EQ(server.initial_report().failures.size(), 1u);
  EXPECT_EQ(server.initial_report().loaded,
            std::vector<std::string>{"alpha"});

  ServeClient client = Connect(server);
  auto health = client.Call("health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, "ok serving entries=1 degraded=1 version=1");
  auto good = client.Call("estimate alpha a");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->rfind("ok ", 0), 0u) << *good;
  auto bad = client.Call("estimate broken a");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->rfind("err NotFound fatal ", 0), 0u) << *bad;

  // The quarantine is visible to monitoring via stats' last_reload report.
  auto stats = client.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"corrupt\":1"), std::string::npos) << *stats;
}

TEST_F(ServeTest, ReloadSwapsAtomicallyAndDegradesNeverOutages) {
  const std::vector<std::string> paths = {"a", "a/b", "a/b/c"};
  const auto v1 = WriteEntry(root_ / "v1", "probe", 6,
                             HistogramType::kVOptimal);
  const auto v2 = WriteEntry(root_ / "v2", "probe", 2,
                             HistogramType::kEquiWidth);
  const std::string oracle_v1 = OracleResponse(v1, paths);
  const std::string oracle_v2 = OracleResponse(v2, paths);
  ASSERT_NE(oracle_v1, oracle_v2) << "versions must be distinguishable";

  std::filesystem::create_directories(root_ / "live");
  const auto live = root_ / "live" / "probe.stats";
  std::filesystem::copy_file(v1, live);

  ServeServer server(BaseOptions(root_ / "live"));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = Connect(server);
  const std::string query = "estimate probe a a/b a/b/c";

  auto before = client.Call(query);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, oracle_v1);

  // Healthy reload: the new snapshot swaps in.
  std::filesystem::copy_file(
      v2, live, std::filesystem::copy_options::overwrite_existing);
  auto reload = client.Call("reload");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(*reload,
            "ok loaded=1 quarantined=0 kept_stale=0 removed=0 serving=1 "
            "degraded=0 version=2");
  auto after = client.Call(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, oracle_v2);

  // Corrupt reload: quarantined, and the PREVIOUS (v2) snapshot keeps
  // serving — degradation, not an outage.
  CorruptFile(live);
  auto degraded = client.Call("reload");
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(*degraded,
            "ok loaded=0 quarantined=1 kept_stale=1 removed=0 serving=1 "
            "degraded=1 version=3");
  auto kept = client.Call(query);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(*kept, oracle_v2);
  auto health = client.Call("health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, "ok serving entries=1 degraded=1 version=3");

  // Unreadable-directory reload: a typed error, and NOTHING changes.
  auto nodir = client.Call("reload dir=" + (root_ / "nope").string());
  ASSERT_TRUE(nodir.ok());
  EXPECT_EQ(nodir->rfind("err ", 0), 0u) << *nodir;
  auto unchanged = client.Call(query);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(*unchanged, oracle_v2);

  // A vanished file is a deliberate removal, not corruption: dropped.
  std::filesystem::remove(live);
  auto removed = client.Call("reload");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed,
            "ok loaded=0 quarantined=0 kept_stale=0 removed=1 serving=0 "
            "degraded=0 version=4");
  auto gone = client.Call(query);
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->rfind("err NotFound fatal ", 0), 0u) << *gone;
}

TEST_F(ServeTest, DrainAnswersOpenConnectionsAndJoinsCleanly) {
  WriteEntry(root_ / "cat", "alpha", 6, HistogramType::kVOptimal);
  ServeServer server(BaseOptions(root_ / "cat"));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = Connect(server);
  auto resp = client.Call("estimate alpha a");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->rfind("ok ", 0), 0u);

  server.RequestStop();
  server.Wait();
  server.Wait();  // idempotent

  // The idle connection was told why it is going away (a retriable
  // Unavailable) before the close; depending on timing the client may
  // instead observe the close first. Either way: no hang, no silence
  // followed by garbage.
  auto last = client.Call("health");
  if (last.ok()) {
    EXPECT_EQ(last->rfind("err Unavailable retriable ", 0), 0u) << *last;
  }
}

// ---------------------------------------------------------------------------
// The torture test. Three estimate clients hammer one entry while two
// reload threads rotate the live catalog file between v1 bytes, v2 bytes,
// and CORRUPT bytes (and issue `reload` each time, racing each other).
// Invariants:
//   * every estimate response is bit-identical to the serial oracle of v1
//     or of v2 — a torn mix or a garbage value is an instant failure
//     (corrupt content never serves: it quarantines and the previous
//     snapshot answers);
//   * every reload response is "ok ..." or the typed retriable conflict;
//   * nothing hangs: every thread joins, the server drains cleanly.

TEST_F(ServeTest, TortureConcurrentClientsReloadStormInjectedCorruption) {
  const std::vector<std::string> paths = {"a", "a/b", "a/b/c", "b/c", "c"};
  const auto v1 = WriteEntry(root_ / "v1", "probe", 6,
                             HistogramType::kVOptimal);
  const auto v2 = WriteEntry(root_ / "v2", "probe", 2,
                             HistogramType::kEquiWidth);
  const std::string oracle_v1 = OracleResponse(v1, paths);
  const std::string oracle_v2 = OracleResponse(v2, paths);
  ASSERT_NE(oracle_v1, oracle_v2);

  auto v1_bytes = ReadFileBytes(v1.string());
  auto v2_bytes = ReadFileBytes(v2.string());
  ASSERT_TRUE(v1_bytes.ok());
  ASSERT_TRUE(v2_bytes.ok());
  std::string corrupt_bytes = *v2_bytes;
  ASSERT_TRUE(FlipBit(&corrupt_bytes, corrupt_bytes.size() / 2, 5).ok());

  std::filesystem::create_directories(root_ / "live");
  const std::string live = (root_ / "live" / "probe.stats").string();
  ASSERT_TRUE(WriteFileBytes(live, *v1_bytes).ok());

  ServeOptions options = BaseOptions(root_ / "live");
  // Every client thread holds one persistent connection, so workers must
  // cover clients + reloaders; the queue covers transient bursts.
  options.num_workers = 6;
  options.queue_capacity = 16;
  ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kEstimateClients = 3;
  constexpr int kEstimatesEach = 80;
  constexpr int kReloaders = 2;
  constexpr int kReloadsEach = 25;
  const std::string query = "estimate probe a a/b a/b/c b/c c";

  std::atomic<int> violations{0};
  std::mutex first_mu;
  std::string first_violation;
  auto record = [&](const std::string& what) {
    violations.fetch_add(1);
    std::lock_guard<std::mutex> lock(first_mu);
    if (first_violation.empty()) first_violation = what;
  };

  std::vector<std::thread> threads;
  for (int c = 0; c < kEstimateClients; ++c) {
    threads.emplace_back([&] {
      auto client = ServeClient::Connect(options.socket_path);
      if (!client.ok()) {
        record("connect: " + client.status().ToString());
        return;
      }
      for (int i = 0; i < kEstimatesEach; ++i) {
        auto resp = client->Call(query);
        if (!resp.ok()) {
          record("transport: " + resp.status().ToString());
          return;
        }
        // THE invariant: bit-identical to one version's serial oracle.
        if (*resp != oracle_v1 && *resp != oracle_v2) {
          record("torn/garbage response: " + *resp);
        }
        if (i % 10 == 0) {
          auto health = client->Call("health");
          if (!health.ok() || health->rfind("ok serving ", 0) != 0) {
            record("health during storm");
          }
        }
      }
    });
  }
  for (int r = 0; r < kReloaders; ++r) {
    threads.emplace_back([&, r] {
      auto client = ServeClient::Connect(options.socket_path);
      if (!client.ok()) {
        record("reloader connect: " + client.status().ToString());
        return;
      }
      const std::string* rotation[] = {&*v1_bytes, &corrupt_bytes,
                                       &*v2_bytes};
      for (int i = 0; i < kReloadsEach; ++i) {
        // Plain non-atomic writes on purpose: a reload may even catch a
        // HALF-written file — that is just one more corruption to survive.
        (void)WriteFileBytes(live, *rotation[(i + r) % 3]);
        auto resp = client->Call("reload");
        if (!resp.ok()) {
          record("reload transport: " + resp.status().ToString());
          return;
        }
        if (resp->rfind("ok ", 0) != 0 &&
            resp->rfind("err Unavailable retriable ", 0) != 0) {
          record("reload: " + *resp);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(violations.load(), 0) << first_violation;
  EXPECT_GE(server.counters().estimate_requests.load(),
            static_cast<uint64_t>(kEstimateClients * kEstimatesEach));
  EXPECT_GE(server.counters().reloads.load(), 1u);
  EXPECT_EQ(server.counters().connections_shed.load(), 0u);

  server.RequestStop();
  server.Wait();
}

}  // namespace
}  // namespace serve
}  // namespace pathest
