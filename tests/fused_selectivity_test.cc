// The strategy-selection contract (selectivity.h): the SelectivityMap is
// bit-identical across strategy ∈ {fused, per-label}, kernel ∈ {auto,
// sparse, dense}, and num_threads ∈ {1, 2, 4}; the max_pairs_per_prefix
// abort status is identical too (the fused engine's prefix tasks must
// reproduce the per-label DFS's first-violation semantics exactly). Also
// covers the vertex-major view / adjacency-plane backed kernel against the
// independent EvaluatePathPairs oracle, shallow builds (k = 1, 2) that
// bypass the prefix tasks, >64-label graphs, task-count resolution, and
// the once-per-root callback contract under task decomposition.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "gen/label_assigner.h"
#include "graph/graph_builder.h"
#include "path/selectivity.h"
#include "test_util.h"

namespace pathest {
namespace {

Graph ErdosRenyiGraph(size_t num_vertices, size_t num_edges,
                      size_t num_labels, uint64_t seed) {
  UniformLabelAssigner labels(num_labels);
  ErdosRenyiParams params;
  params.num_vertices = num_vertices;
  params.num_edges = num_edges;
  params.seed = seed;
  auto g = GenerateErdosRenyi(params, &labels);
  PATHEST_CHECK(g.ok(), "Erdős–Rényi generation failed");
  return std::move(g).ValueOrDie();
}

Graph ForestFireGraph(size_t num_vertices, size_t num_labels, uint64_t seed) {
  UniformLabelAssigner labels(num_labels);
  ForestFireParams params;
  params.num_vertices = num_vertices;
  params.seed = seed;
  auto g = GenerateForestFire(params, &labels);
  PATHEST_CHECK(g.ok(), "forest fire generation failed");
  return std::move(g).ValueOrDie();
}

SelectivityMap Compute(const Graph& g, size_t k, ExtendStrategy strategy,
                       PairKernel kernel, size_t threads) {
  SelectivityOptions options;
  options.strategy = strategy;
  options.kernel = kernel;
  options.num_threads = threads;
  auto map = ComputeSelectivities(g, k, options);
  PATHEST_CHECK(map.ok(), "selectivity computation failed");
  return std::move(map).ValueOrDie();
}

// Asserts the full strategy × kernel × threads grid against the per-label
// sparse serial map.
void ExpectStrategyInvariance(const Graph& g, size_t k) {
  const SelectivityMap baseline =
      Compute(g, k, ExtendStrategy::kPerLabel, PairKernel::kSparse, 1);
  for (ExtendStrategy strategy :
       {ExtendStrategy::kFused, ExtendStrategy::kPerLabel}) {
    for (PairKernel kernel :
         {PairKernel::kAuto, PairKernel::kSparse, PairKernel::kDense}) {
      for (size_t threads : {1u, 2u, 4u}) {
        const SelectivityMap map = Compute(g, k, strategy, kernel, threads);
        EXPECT_EQ(map.values(), baseline.values())
            << "strategy=" << ExtendStrategyName(strategy)
            << " kernel=" << PairKernelName(kernel) << " threads=" << threads;
      }
    }
  }
}

// Rebuilds `g`'s edge multiset under a forced plane policy/budget.
Graph RebuildWithPlane(const Graph& g, PlanePolicy policy,
                       size_t budget_bytes) {
  GraphBuilder builder;
  builder.Adopt(g.labels(), g.CollectEdges(), g.num_vertices());
  GraphBuildOptions options;
  options.plane = policy;
  options.plane_budget_bytes = budget_bytes;
  auto built = builder.Build(options);
  PATHEST_CHECK(built.ok(), "plane rebuild failed");
  return std::move(built).ValueOrDie();
}

TEST(FusedSelectivityTest, PlaneKindInvariance) {
  // The plane dimension of the grid: no plane, dense plane, and the hub
  // plane (forced by a budget the dense plane cannot fit) must all give
  // bit-identical maps across strategy × kernel × threads — the hub path
  // falls back to target-list scans per rowless cell, never changing the
  // computed sets.
  const Graph base = ErdosRenyiGraph(200, 2400, 3, 29);
  const SelectivityMap baseline =
      Compute(base, 3, ExtendStrategy::kPerLabel, PairKernel::kSparse, 1);
  const struct {
    PlanePolicy policy;
    size_t budget_bytes;
    PlaneKind want;
  } cases[] = {
      {PlanePolicy::kNone, kAdjacencyPlaneMaxBytes, PlaneKind::kNone},
      {PlanePolicy::kDense, kAdjacencyPlaneMaxBytes, PlaneKind::kDense},
      // 1 KiB cannot hold the 19200-byte dense plane, so kAuto goes hub.
      {PlanePolicy::kAuto, 1024, PlaneKind::kHub},
      {PlanePolicy::kHub, kAdjacencyPlaneMaxBytes, PlaneKind::kHub},
  };
  for (const auto& c : cases) {
    const Graph g = RebuildWithPlane(base, c.policy, c.budget_bytes);
    ASSERT_EQ(g.AdjacencyBitmaps().kind, c.want);
    if (c.want == PlaneKind::kHub) {
      // The bitmap path must actually be live, not vacuously absent.
      ASSERT_GT(g.AdjacencyBitmaps().num_rows, 0u);
    }
    for (ExtendStrategy strategy :
         {ExtendStrategy::kFused, ExtendStrategy::kPerLabel}) {
      for (PairKernel kernel :
           {PairKernel::kAuto, PairKernel::kSparse, PairKernel::kDense}) {
        for (size_t threads : {1u, 2u, 4u}) {
          const SelectivityMap map = Compute(g, 3, strategy, kernel, threads);
          EXPECT_EQ(map.values(), baseline.values())
              << "plane=" << PlaneKindName(c.want)
              << " strategy=" << ExtendStrategyName(strategy)
              << " kernel=" << PairKernelName(kernel)
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(FusedSelectivityTest, SparseErdosRenyi) {
  ExpectStrategyInvariance(ErdosRenyiGraph(300, 600, 4, 13), /*k=*/4);
}

TEST(FusedSelectivityTest, MidDensityErdosRenyi) {
  ExpectStrategyInvariance(ErdosRenyiGraph(200, 2400, 3, 29), /*k=*/4);
}

TEST(FusedSelectivityTest, DenseErdosRenyi) {
  // Near-complete: the leaf cells run the adjacency-plane row unions.
  ExpectStrategyInvariance(ErdosRenyiGraph(60, 1500, 3, 7), /*k=*/4);
}

TEST(FusedSelectivityTest, ForestFire) {
  ExpectStrategyInvariance(ForestFireGraph(350, 5, 17), /*k=*/4);
}

TEST(FusedSelectivityTest, ShallowBuildsBypassPrefixTasks) {
  // k = 1 and k = 2 complete entirely in the pre-pass (no prefix tasks);
  // they must still agree with the per-label engine.
  const Graph g = ForestFireGraph(250, 4, 99);
  for (size_t k : {1u, 2u}) {
    ExpectStrategyInvariance(g, k);
    EXPECT_EQ(SelectivityTaskCount(g.num_labels(), k, ExtendStrategy::kFused),
              g.num_labels());
  }
}

TEST(FusedSelectivityTest, RandomizedSeedSweep) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    ExpectStrategyInvariance(ErdosRenyiGraph(120, 40 * seed * seed, 4, seed),
                             /*k=*/3);
    ExpectStrategyInvariance(ForestFireGraph(100 + 30 * seed, 4, seed),
                             /*k=*/3);
  }
}

TEST(FusedSelectivityTest, AgreesWithIndependentPathOracle) {
  // EvaluatePathPairs shares no code with the fused kernel (per-label
  // loops, no vertex-major view, no adjacency plane, no incremental
  // canonical index) — full-domain agreement pins down both the kernel
  // and the index bookkeeping.
  const Graph g = ErdosRenyiGraph(120, 1400, 3, 5);
  const size_t k = 4;
  const SelectivityMap fused =
      Compute(g, k, ExtendStrategy::kFused, PairKernel::kAuto, 2);
  PathSpace space(g.num_labels(), k);
  space.ForEach([&](const LabelPath& path) {
    auto pairs = EvaluatePathPairs(g, path);
    ASSERT_TRUE(pairs.ok()) << path.ToIdString();
    EXPECT_EQ(pairs->size(), fused.Get(path)) << path.ToIdString();
  });
}

TEST(FusedSelectivityTest, MoreThan64LabelsSupported) {
  // Wide label sets exercise the per-label marker/bitset arrays well past
  // the old 64-label bitmask ceiling; k = 3 exercises the |L|² = 4900
  // prefix tasks.
  const Graph g = ErdosRenyiGraph(80, 4000, 70, 3);
  ASSERT_EQ(g.num_labels(), 70u);
  const SelectivityMap baseline =
      Compute(g, 2, ExtendStrategy::kPerLabel, PairKernel::kSparse, 1);
  for (size_t threads : {1u, 4u}) {
    const SelectivityMap map =
        Compute(g, 2, ExtendStrategy::kFused, PairKernel::kAuto, threads);
    EXPECT_EQ(map.values(), baseline.values()) << "threads=" << threads;
  }
  const SelectivityMap deep_baseline =
      Compute(g, 3, ExtendStrategy::kPerLabel, PairKernel::kAuto, 1);
  const SelectivityMap deep =
      Compute(g, 3, ExtendStrategy::kFused, PairKernel::kAuto, 4);
  EXPECT_EQ(deep.values(), deep_baseline.values());
}

TEST(FusedSelectivityTest, AbortStatusIdenticalAcrossStrategies) {
  // Level-1 violations surface from the fused pre-pass, level-2 ones from
  // the cell guard, deeper ones from inside prefix tasks; all three must
  // reproduce the per-label DFS's first-violation path and message.
  const Graph g = ErdosRenyiGraph(80, 1200, 3, 5);
  uint64_t level1_max = 0;
  uint64_t level2_max = 0;
  for (LabelId a = 0; a < g.num_labels(); ++a) {
    auto f1 = EvaluatePathSelectivity(g, LabelPath{a});
    ASSERT_TRUE(f1.ok());
    level1_max = std::max(level1_max, *f1);
    for (LabelId b = 0; b < g.num_labels(); ++b) {
      auto f2 = EvaluatePathSelectivity(g, LabelPath{a, b});
      ASSERT_TRUE(f2.ok());
      level2_max = std::max(level2_max, *f2);
    }
  }
  // Guards tripping at level 1, level 2, and (when the graph densifies
  // deeper) strictly below level 2. level1_max - 1 and level2_max - 1 must
  // fail by construction; for each guard the fused engine must reproduce
  // the per-label outcome exactly, whatever it is.
  size_t failures_checked = 0;
  for (uint64_t guard : {level1_max - 1, level1_max, level2_max - 1,
                         level2_max}) {
    SelectivityOptions reference_options;
    reference_options.strategy = ExtendStrategy::kPerLabel;
    reference_options.num_threads = 1;
    reference_options.max_pairs_per_prefix = guard;
    auto reference = ComputeSelectivities(g, 4, reference_options);
    if (!reference.ok()) {
      ASSERT_EQ(reference.status().code(), StatusCode::kResourceExhausted);
      ++failures_checked;
    }
    for (size_t threads : {1u, 2u, 4u}) {
      SelectivityOptions options = reference_options;
      options.strategy = ExtendStrategy::kFused;
      options.num_threads = threads;
      auto result = ComputeSelectivities(g, 4, options);
      ASSERT_EQ(result.ok(), reference.ok())
          << "guard=" << guard << " threads=" << threads;
      if (!reference.ok()) {
        EXPECT_EQ(result.status().ToString(), reference.status().ToString())
            << "guard=" << guard << " threads=" << threads;
      } else {
        EXPECT_EQ(result->values(), reference->values())
            << "guard=" << guard << " threads=" << threads;
      }
    }
  }
  EXPECT_GE(failures_checked, 2u);
}

TEST(FusedSelectivityTest, TaskCountAndThreadResolution) {
  EXPECT_EQ(SelectivityTaskCount(6, 4, ExtendStrategy::kFused), 36u);
  EXPECT_EQ(SelectivityTaskCount(6, 2, ExtendStrategy::kFused), 6u);
  EXPECT_EQ(SelectivityTaskCount(6, 4, ExtendStrategy::kPerLabel), 6u);

  SelectivityOptions fused;
  fused.strategy = ExtendStrategy::kFused;
  fused.num_threads = 64;
  // The per-label |L| clamp is gone: fused builds scale to |L|² workers.
  EXPECT_EQ(ResolvedNumThreads(fused, 6, 4), 36u);
  EXPECT_EQ(ResolvedNumThreads(fused, 6, 2), 6u);
  fused.num_threads = 8;
  EXPECT_EQ(ResolvedNumThreads(fused, 6, 4), 8u);

  SelectivityOptions per_label;
  per_label.strategy = ExtendStrategy::kPerLabel;
  per_label.num_threads = 64;
  EXPECT_EQ(ResolvedNumThreads(per_label, 6, 4), 6u);
}

TEST(FusedSelectivityTest, ThreadCountAboveTaskCountIsClamped) {
  Graph g = testing_util::SmallGraph();  // 3 labels -> 9 prefix tasks
  SelectivityOptions options;
  options.num_threads = 64;  // clamped to |L|² internally
  auto map = ComputeSelectivities(g, 3, options);
  ASSERT_TRUE(map.ok());
  auto baseline = ComputeSelectivities(g, 3);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(map->values(), baseline->values());
}

TEST(FusedSelectivityTest, ProgressAndLabelTimeFireOncePerRoot) {
  // Under task decomposition a root's subtree spans many tasks, but the
  // callbacks must still fire exactly once per root (documented contract),
  // serialized behind the engine's mutex.
  Graph g = ForestFireGraph(300, 6, 3);
  for (size_t threads : {1u, 4u}) {
    SelectivityOptions options;
    options.strategy = ExtendStrategy::kFused;
    options.num_threads = threads;
    std::multiset<LabelId> progress_roots;
    std::vector<double> times;
    options.progress = [&](LabelId root) { progress_roots.insert(root); };
    options.label_time = [&](LabelId, double ms) {
      EXPECT_GE(ms, 0.0);
      times.push_back(ms);
    };
    auto map = ComputeSelectivities(g, 3, options);
    ASSERT_TRUE(map.ok());
    ASSERT_EQ(progress_roots.size(), g.num_labels());
    for (LabelId l = 0; l < g.num_labels(); ++l) {
      EXPECT_EQ(progress_roots.count(l), 1u) << "root " << l;
    }
    EXPECT_EQ(times.size(), g.num_labels());
  }
}

TEST(FusedSelectivityTest, StrategyParseAndNameRoundTrip) {
  for (ExtendStrategy strategy :
       {ExtendStrategy::kFused, ExtendStrategy::kPerLabel}) {
    auto parsed = ParseExtendStrategy(ExtendStrategyName(strategy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, strategy);
  }
  EXPECT_FALSE(ParseExtendStrategy("perlabel").ok());
  EXPECT_FALSE(ParseExtendStrategy("").ok());
}

}  // namespace
}  // namespace pathest
