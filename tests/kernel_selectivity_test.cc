// The kernel-selection contract (selectivity.h): the SelectivityMap is
// bit-identical across kernel ∈ {auto, sparse, dense} and num_threads ∈
// {1, 2, 4}, on graphs spanning the density spectrum (sparse Erdős–Rényi
// through near-complete, plus forest fire), and EvaluatePathPairs agrees
// with the maps of both forced kernels. Also covers the lifted 64-label
// ceiling of the leaf pass.

#include <vector>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "gen/label_assigner.h"
#include "path/selectivity.h"

namespace pathest {
namespace {

Graph ErdosRenyiGraph(size_t num_vertices, size_t num_edges,
                      size_t num_labels, uint64_t seed) {
  UniformLabelAssigner labels(num_labels);
  ErdosRenyiParams params;
  params.num_vertices = num_vertices;
  params.num_edges = num_edges;
  params.seed = seed;
  auto g = GenerateErdosRenyi(params, &labels);
  PATHEST_CHECK(g.ok(), "Erdős–Rényi generation failed");
  return std::move(g).ValueOrDie();
}

Graph ForestFireGraph(size_t num_vertices, size_t num_labels, uint64_t seed) {
  UniformLabelAssigner labels(num_labels);
  ForestFireParams params;
  params.num_vertices = num_vertices;
  params.seed = seed;
  auto g = GenerateForestFire(params, &labels);
  PATHEST_CHECK(g.ok(), "forest fire generation failed");
  return std::move(g).ValueOrDie();
}

SelectivityMap Compute(const Graph& g, size_t k, PairKernel kernel,
                       size_t threads) {
  SelectivityOptions options;
  options.kernel = kernel;
  options.num_threads = threads;
  auto map = ComputeSelectivities(g, k, options);
  PATHEST_CHECK(map.ok(), "selectivity computation failed");
  return std::move(map).ValueOrDie();
}

// Asserts the full kernel × threads grid against the sparse serial map.
void ExpectKernelAndThreadInvariance(const Graph& g, size_t k) {
  const SelectivityMap baseline = Compute(g, k, PairKernel::kSparse, 1);
  for (PairKernel kernel :
       {PairKernel::kAuto, PairKernel::kSparse, PairKernel::kDense}) {
    for (size_t threads : {1u, 2u, 4u}) {
      const SelectivityMap map = Compute(g, k, kernel, threads);
      EXPECT_EQ(map.values(), baseline.values())
          << "kernel=" << PairKernelName(kernel) << " threads=" << threads;
    }
  }
}

TEST(KernelSelectivityTest, SparseErdosRenyi) {
  // Avg degree ~2: nearly every cell stays under the density threshold, so
  // auto runs the marker kernel and forced-dense exercises bitmap scans on
  // tiny groups.
  ExpectKernelAndThreadInvariance(ErdosRenyiGraph(300, 600, 4, 13), /*k=*/4);
}

TEST(KernelSelectivityTest, MidDensityErdosRenyi) {
  // Avg degree ~12: level-1 groups are sparse, deeper levels dense — the
  // regime where auto genuinely mixes both kernels within one evaluation.
  ExpectKernelAndThreadInvariance(ErdosRenyiGraph(200, 2400, 3, 29), /*k=*/4);
}

TEST(KernelSelectivityTest, DenseErdosRenyi) {
  // Avg degree ~25 on 60 vertices: pair sets saturate toward |V|^2 and the
  // penultimate pass is all-dense.
  ExpectKernelAndThreadInvariance(ErdosRenyiGraph(60, 1500, 3, 7), /*k=*/4);
}

TEST(KernelSelectivityTest, ForestFire) {
  ExpectKernelAndThreadInvariance(ForestFireGraph(350, 5, 17), /*k=*/4);
}

TEST(KernelSelectivityTest, ForestFireDeeper) {
  ExpectKernelAndThreadInvariance(ForestFireGraph(150, 3, 23), /*k=*/5);
}

TEST(KernelSelectivityTest, RandomizedSeedSweep) {
  // Several seeds per model at k=3 — cheap, broad cross-check.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    ExpectKernelAndThreadInvariance(
        ErdosRenyiGraph(120, 40 * seed * seed, 4, seed), /*k=*/3);
    ExpectKernelAndThreadInvariance(ForestFireGraph(100 + 30 * seed, 4, seed),
                                    /*k=*/3);
  }
}

TEST(KernelSelectivityTest, EvaluatePathPairsAgreesWithBothKernels) {
  const Graph g = ErdosRenyiGraph(120, 1400, 3, 5);
  const size_t k = 4;
  const SelectivityMap sparse = Compute(g, k, PairKernel::kSparse, 1);
  const SelectivityMap dense = Compute(g, k, PairKernel::kDense, 1);
  PathSpace space(g.num_labels(), k);
  space.ForEach([&](const LabelPath& path) {
    auto pairs = EvaluatePathPairs(g, path);
    ASSERT_TRUE(pairs.ok()) << path.ToIdString();
    EXPECT_EQ(pairs->size(), sparse.Get(path)) << path.ToIdString();
    EXPECT_EQ(pairs->size(), dense.Get(path)) << path.ToIdString();
    // Packed pairs are sorted and distinct — any dense-kernel emission bug
    // (duplicate or dropped vertex) would surface here.
    for (size_t i = 1; i < pairs->size(); ++i) {
      ASSERT_LT((*pairs)[i - 1], (*pairs)[i]) << path.ToIdString();
    }
  });
}

TEST(KernelSelectivityTest, MoreThan64LabelsSupported) {
  // The old per-vertex bitmask leaf pass aborted beyond 64 labels; both
  // kernels must now handle arbitrary label counts.
  const Graph g = ErdosRenyiGraph(80, 4000, 70, 3);
  ASSERT_EQ(g.num_labels(), 70u);
  const SelectivityMap baseline = Compute(g, 2, PairKernel::kSparse, 1);
  for (PairKernel kernel : {PairKernel::kAuto, PairKernel::kDense}) {
    for (size_t threads : {1u, 4u}) {
      const SelectivityMap map = Compute(g, 2, kernel, threads);
      EXPECT_EQ(map.values(), baseline.values())
          << "kernel=" << PairKernelName(kernel) << " threads=" << threads;
    }
  }
  // Spot-check against the independent single-path evaluator.
  for (LabelId l : {0u, 13u, 37u, 69u}) {
    for (LabelId m : {5u, 42u, 69u}) {
      LabelPath path{l, m};
      auto f = EvaluatePathSelectivity(g, path);
      ASSERT_TRUE(f.ok());
      EXPECT_EQ(*f, baseline.Get(path)) << path.ToIdString();
    }
  }
}

TEST(KernelSelectivityTest, AbortStatusIdenticalAcrossKernels) {
  // The max_pairs_per_prefix guard must trip at the same path with the same
  // message whichever kernel produced the oversized pair set.
  const Graph g = ErdosRenyiGraph(80, 1200, 3, 5);
  SelectivityOptions base;
  base.num_threads = 1;
  base.kernel = PairKernel::kSparse;
  base.max_pairs_per_prefix = 400;
  auto reference = ComputeSelectivities(g, 4, base);
  ASSERT_FALSE(reference.ok());
  ASSERT_EQ(reference.status().code(), StatusCode::kResourceExhausted);
  for (PairKernel kernel : {PairKernel::kAuto, PairKernel::kDense}) {
    for (size_t threads : {1u, 4u}) {
      SelectivityOptions options = base;
      options.kernel = kernel;
      options.num_threads = threads;
      auto result = ComputeSelectivities(g, 4, options);
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().ToString(), reference.status().ToString())
          << "kernel=" << PairKernelName(kernel) << " threads=" << threads;
    }
  }
}

TEST(KernelSelectivityTest, ParseAndNameRoundTrip) {
  for (PairKernel kernel :
       {PairKernel::kAuto, PairKernel::kSparse, PairKernel::kDense}) {
    auto parsed = ParsePairKernel(PairKernelName(kernel));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kernel);
  }
  EXPECT_FALSE(ParsePairKernel("bitmap").ok());
  EXPECT_FALSE(ParsePairKernel("").ok());
}

}  // namespace
}  // namespace pathest
