// Unit tests for DynamicBitset: set/test semantics, word-level union,
// popcount totals, ascending word-scan emission, and scratch reuse across
// accumulate/drain cycles (the dense kernel's usage pattern).

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/random.h"

namespace pathest {
namespace {

TEST(DynamicBitsetTest, StartsEmptyAndSetBitReportsNewness) {
  DynamicBitset bits(130);  // straddles a word boundary + a partial word
  EXPECT_EQ(bits.num_bits(), 130u);
  EXPECT_EQ(bits.num_words(), 3u);
  EXPECT_EQ(bits.Count(), 0u);
  for (size_t i : {0u, 63u, 64u, 127u, 128u, 129u}) {
    EXPECT_FALSE(bits.Test(i)) << i;
    EXPECT_TRUE(bits.SetBit(i)) << i;
    EXPECT_TRUE(bits.Test(i)) << i;
    EXPECT_FALSE(bits.SetBit(i)) << "second set of " << i;
  }
  EXPECT_EQ(bits.Count(), 6u);
}

TEST(DynamicBitsetTest, SetBitBlindMatchesSetBit) {
  DynamicBitset a(200);
  DynamicBitset b(200);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const size_t pos = static_cast<size_t>(rng.NextBounded(200));
    a.SetBit(pos);
    b.SetBitBlind(pos);  // duplicates must be harmless
  }
  EXPECT_EQ(a.Count(), b.Count());
  for (size_t i = 0; i < 200; ++i) EXPECT_EQ(a.Test(i), b.Test(i)) << i;
}

TEST(DynamicBitsetTest, UnionWithIsSetUnion) {
  const size_t n = 300;
  DynamicBitset a(n);
  DynamicBitset b(n);
  std::set<size_t> reference;
  Rng rng(11);
  for (int i = 0; i < 120; ++i) {
    const size_t pa = static_cast<size_t>(rng.NextBounded(n));
    const size_t pb = static_cast<size_t>(rng.NextBounded(n));
    a.SetBit(pa);
    b.SetBit(pb);
    reference.insert(pa);
    reference.insert(pb);
  }
  a.UnionWith(b);
  EXPECT_EQ(a.Count(), reference.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a.Test(i), reference.count(i) == 1) << i;
  }
}

TEST(DynamicBitsetTest, WordScanEmitsAscending) {
  const size_t n = 500;
  DynamicBitset bits(n);
  std::set<size_t> reference;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const size_t pos = static_cast<size_t>(rng.NextBounded(n));
    bits.SetBit(pos);
    reference.insert(pos);
  }
  const std::vector<size_t> expected(reference.begin(), reference.end());

  std::vector<size_t> via_foreach;
  bits.ForEachSetBit([&](size_t i) { via_foreach.push_back(i); });
  EXPECT_EQ(via_foreach, expected);

  std::vector<size_t> via_iterator;
  for (size_t i : bits) via_iterator.push_back(i);
  EXPECT_EQ(via_iterator, expected);
  EXPECT_TRUE(std::is_sorted(via_iterator.begin(), via_iterator.end()));
}

TEST(DynamicBitsetTest, IteratorOnEmptyAndSingleBit) {
  DynamicBitset empty(77);
  EXPECT_TRUE(empty.begin() == empty.end());
  DynamicBitset zero_capacity;
  EXPECT_TRUE(zero_capacity.begin() == zero_capacity.end());

  DynamicBitset one(77);
  one.SetBit(76);
  auto it = one.begin();
  ASSERT_TRUE(it != one.end());
  EXPECT_EQ(*it, 76u);
  ++it;
  EXPECT_TRUE(it == one.end());
}

TEST(DynamicBitsetTest, CountAndClearDrainsInOnePass) {
  DynamicBitset bits(256);
  for (size_t i = 0; i < 256; i += 3) bits.SetBitBlind(i);
  EXPECT_EQ(bits.CountAndClear(), 86u);
  EXPECT_EQ(bits.Count(), 0u);
  for (size_t i = 0; i < 256; ++i) EXPECT_FALSE(bits.Test(i)) << i;
}

TEST(DynamicBitsetTest, ExtractAndClearEmitsAscendingAndEmpties) {
  DynamicBitset bits(192);
  const std::vector<size_t> expected{1, 5, 63, 64, 65, 128, 191};
  for (size_t i : expected) bits.SetBitBlind(i);
  std::vector<size_t> emitted;
  bits.ExtractAndClear([&](size_t i) { emitted.push_back(i); });
  EXPECT_EQ(emitted, expected);
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(DynamicBitsetTest, ReusableAcrossDrainCycles) {
  // The kernels rely on the all-zero-after-drain invariant: many rounds of
  // accumulate + drain on one instance must behave like fresh bitsets.
  const size_t n = 333;
  DynamicBitset bits(n);
  Rng rng(21);
  for (int round = 0; round < 50; ++round) {
    std::set<size_t> reference;
    const int inserts = 1 + static_cast<int>(rng.NextBounded(60));
    for (int i = 0; i < inserts; ++i) {
      const size_t pos = static_cast<size_t>(rng.NextBounded(n));
      bits.SetBitBlind(pos);
      reference.insert(pos);
    }
    std::vector<size_t> emitted;
    bits.ExtractAndClear([&](size_t i) { emitted.push_back(i); });
    EXPECT_EQ(emitted, std::vector<size_t>(reference.begin(), reference.end()))
        << "round " << round;
  }
}

TEST(DynamicBitsetTest, ResetResizesAndClears) {
  DynamicBitset bits(64);
  bits.SetBit(10);
  bits.Reset(1000);
  EXPECT_EQ(bits.num_bits(), 1000u);
  EXPECT_EQ(bits.num_words(), 16u);
  EXPECT_EQ(bits.Count(), 0u);
  bits.SetBit(999);
  EXPECT_EQ(bits.Count(), 1u);
  bits.ClearAll();
  EXPECT_EQ(bits.Count(), 0u);
}

}  // namespace
}  // namespace pathest
