// Reference-model tests: each closed-form ordering must match an
// independently-implemented oracle that materializes the whole domain and
// sorts it with the ordering's DEFINITION (comparator), rather than its
// arithmetic. Catches systematic off-by-structure bugs the round-trip
// property tests cannot see.

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/workload.h"
#include "ordering/factory.h"
#include "ordering/lexicographic.h"
#include "ordering/numerical.h"
#include "ordering/sum_based.h"
#include "test_util.h"

namespace pathest {
namespace {

std::vector<uint32_t> RankSeq(const LabelPath& p, const LabelRanking& r) {
  std::vector<uint32_t> seq;
  for (size_t i = 0; i < p.length(); ++i) seq.push_back(r.RankOf(p.label(i)));
  return seq;
}

// Oracle comparator for numerical ordering (paper Formula 1/2): length
// first, then pairwise rank comparison.
bool NumericalLess(const LabelPath& a, const LabelPath& b,
                   const LabelRanking& r) {
  if (a.length() != b.length()) return a.length() < b.length();
  return RankSeq(a, r) < RankSeq(b, r);
}

// Oracle comparator for lexicographical ordering: dictionary order over
// rank sequences (blank-padded with blanks sorting FIRST, per the paper's
// Table 2 — i.e., plain sequence lexicographic comparison).
bool LexLess(const LabelPath& a, const LabelPath& b, const LabelRanking& r) {
  return RankSeq(a, r) < RankSeq(b, r);
}

// Oracle KEY for the sum-based stages 1-2: (length, summed rank). Stages
// 3+ (partition/permutation order) are pinned by the golden Table 2 test;
// here we verify the coarse structure on larger spaces via stable grouping.
std::pair<size_t, uint64_t> SumKey(const LabelPath& p,
                                   const LabelRanking& r) {
  uint64_t sum = 0;
  for (uint32_t v : RankSeq(p, r)) sum += v;
  return {p.length(), sum};
}

using Param = std::tuple<size_t, size_t>;  // (num_labels, k)

class OrderingReferenceTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    auto [num_labels, k] = GetParam();
    k_ = k;
    std::vector<std::pair<std::string, uint64_t>> cards;
    for (size_t i = 0; i < num_labels; ++i) {
      cards.push_back({std::to_string(i + 1), 7 + ((i * 53 + 11) % 90)});
    }
    graph_ =
        std::make_unique<Graph>(testing_util::GraphWithCardinalities(cards));
    std::vector<uint64_t> f;
    for (LabelId l = 0; l < graph_->num_labels(); ++l) {
      f.push_back(graph_->LabelCardinality(l));
    }
    ranking_ = std::make_unique<LabelRanking>(
        LabelRanking::Cardinality(graph_->labels(), f));
    space_ = std::make_unique<PathSpace>(num_labels, k);
    all_paths_ = AllPathsWorkload(*space_);
  }

  size_t k_ = 0;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<LabelRanking> ranking_;
  std::unique_ptr<PathSpace> space_;
  std::vector<LabelPath> all_paths_;
};

TEST_P(OrderingReferenceTest, NumericalMatchesComparatorSort) {
  auto sorted = all_paths_;
  std::sort(sorted.begin(), sorted.end(),
            [&](const LabelPath& a, const LabelPath& b) {
              return NumericalLess(a, b, *ranking_);
            });
  NumericalOrdering ordering(*space_, *ranking_);
  for (uint64_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(ordering.Unrank(i), sorted[i]) << "index " << i;
  }
}

TEST_P(OrderingReferenceTest, LexicographicMatchesComparatorSort) {
  auto sorted = all_paths_;
  std::sort(sorted.begin(), sorted.end(),
            [&](const LabelPath& a, const LabelPath& b) {
              return LexLess(a, b, *ranking_);
            });
  LexicographicOrdering ordering(*space_, *ranking_);
  for (uint64_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(ordering.Unrank(i), sorted[i]) << "index " << i;
  }
}

TEST_P(OrderingReferenceTest, SumBasedMatchesStage12Grouping) {
  auto sorted = all_paths_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](const LabelPath& a, const LabelPath& b) {
                     return SumKey(a, *ranking_) < SumKey(b, *ranking_);
                   });
  SumBasedOrdering ordering(*space_, *ranking_);
  for (uint64_t i = 0; i < sorted.size(); ++i) {
    // Keys must agree position-wise even though in-group order differs.
    EXPECT_EQ(SumKey(ordering.Unrank(i), *ranking_),
              SumKey(sorted[i], *ranking_))
        << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrderingReferenceTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "L" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace pathest
