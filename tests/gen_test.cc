// Unit tests for graph generators, label assigners, and canned datasets.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/generator.h"
#include "graph/graph_stats.h"

namespace pathest {
namespace {

TEST(LabelAssignerTest, UniformCoversAllLabels) {
  UniformLabelAssigner assigner(5);
  Rng rng(1);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[assigner.Assign(0, 1, &rng)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(LabelAssignerTest, ZipfIsSkewed) {
  ZipfLabelAssigner assigner(6, 1.0, 42);
  Rng rng(1);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) ++counts[assigner.Assign(0, 1, &rng)];
  std::sort(counts.begin(), counts.end());
  // Most frequent label at least 4x the least frequent under s = 1, n = 6.
  EXPECT_GT(counts[5], counts[0] * 4);
}

TEST(LabelAssignerTest, TypedIsDeterministicPerTypePair) {
  TypedLabelAssigner assigner(8, 4, 7);
  Rng rng(1);
  // Same (src,dst) types -> labels drawn from the same small candidate set.
  std::set<LabelId> seen;
  for (int i = 0; i < 200; ++i) seen.insert(assigner.Assign(10, 20, &rng));
  // Far fewer labels than 8 should appear for one type pair (candidates + 0).
  EXPECT_LE(seen.size(), 5u);
  EXPECT_EQ(assigner.VertexType(10), assigner.VertexType(10));
}

TEST(ErdosRenyiTest, ProducesRequestedShape) {
  UniformLabelAssigner labels(4);
  ErdosRenyiParams params;
  params.num_vertices = 100;
  params.num_edges = 400;
  params.seed = 3;
  auto g = GenerateErdosRenyi(params, &labels);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 100u);
  EXPECT_EQ(g->num_edges(), 400u);
  EXPECT_EQ(g->num_labels(), 4u);
  // No self loops.
  for (const Edge& e : g->CollectEdges()) EXPECT_NE(e.src, e.dst);
}

TEST(ErdosRenyiTest, DeterministicPerSeed) {
  UniformLabelAssigner labels_a(3);
  UniformLabelAssigner labels_b(3);
  ErdosRenyiParams params;
  params.num_vertices = 50;
  params.num_edges = 120;
  params.seed = 11;
  auto a = GenerateErdosRenyi(params, &labels_a);
  auto b = GenerateErdosRenyi(params, &labels_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->CollectEdges().size(), b->CollectEdges().size());
  auto ea = a->CollectEdges();
  auto eb = b->CollectEdges();
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i], eb[i]);
  }
}

TEST(ErdosRenyiTest, RejectsImpossibleRequests) {
  UniformLabelAssigner labels(1);
  ErdosRenyiParams params;
  params.num_vertices = 2;
  params.num_edges = 100;  // only 2 distinct non-loop pairs exist
  EXPECT_FALSE(GenerateErdosRenyi(params, &labels).ok());
  params.num_vertices = 0;
  params.num_edges = 0;
  EXPECT_FALSE(GenerateErdosRenyi(params, &labels).ok());
}

TEST(ForestFireTest, GrowsConnectedIshGraph) {
  UniformLabelAssigner labels(3);
  ForestFireParams params;
  params.num_vertices = 500;
  params.forward_prob = 0.3;
  params.seed = 5;
  auto g = GenerateForestFire(params, &labels);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 500u);
  // Every non-seed vertex links to at least one predecessor.
  EXPECT_GE(g->num_edges(), 400u);
  GraphStats stats = ComputeGraphStats(*g);
  EXPECT_GT(stats.mean_out_degree, 0.5);
}

TEST(ForestFireTest, RejectsBadProbability) {
  UniformLabelAssigner labels(2);
  ForestFireParams params;
  params.num_vertices = 10;
  params.forward_prob = 1.0;
  EXPECT_FALSE(GenerateForestFire(params, &labels).ok());
}

TEST(PrefAttachmentTest, HeavyTailedInDegrees) {
  UniformLabelAssigner labels(4);
  PrefAttachmentParams params;
  params.num_vertices = 2000;
  params.num_edges = 8000;
  params.pref_prob = 0.8;
  params.seed = 9;
  auto g = GeneratePrefAttachment(params, &labels);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 8000u);
  // In-degree distribution: compute via edges; expect a hub well above mean.
  std::vector<uint64_t> in_deg(g->num_vertices(), 0);
  for (const Edge& e : g->CollectEdges()) ++in_deg[e.dst];
  uint64_t max_in = *std::max_element(in_deg.begin(), in_deg.end());
  double mean_in = 8000.0 / 2000.0;
  EXPECT_GT(static_cast<double>(max_in), mean_in * 5);
}

TEST(PrefAttachmentTest, RejectsBadParams) {
  UniformLabelAssigner labels(2);
  PrefAttachmentParams params;
  params.num_vertices = 1;
  EXPECT_FALSE(GeneratePrefAttachment(params, &labels).ok());
  params.num_vertices = 10;
  params.pref_prob = 1.5;
  EXPECT_FALSE(GeneratePrefAttachment(params, &labels).ok());
}

TEST(DatasetsTest, SpecsMatchTable3) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "moreno");
  EXPECT_EQ(specs[0].num_labels, 6u);
  EXPECT_EQ(specs[0].num_vertices, 2539u);
  EXPECT_EQ(specs[0].num_edges, 12969u);
  EXPECT_TRUE(specs[0].real_world);
  EXPECT_EQ(specs[1].name, "dbpedia");
  EXPECT_EQ(specs[1].num_labels, 8u);
  EXPECT_EQ(specs[2].name, "snap-er");
  EXPECT_FALSE(specs[2].real_world);
  EXPECT_EQ(specs[3].name, "snap-ff");
  EXPECT_EQ(specs[3].num_vertices, 50000u);
}

TEST(DatasetsTest, FindByName) {
  auto spec = FindDatasetSpec("snap-er");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->num_edges, 147996u);
  EXPECT_FALSE(FindDatasetSpec("nope").ok());
}

TEST(DatasetsTest, ScaledBuildsAreFaithfulInShape) {
  // Scale 0.05 keeps the test fast while validating the generator wiring.
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    auto g = BuildDataset(spec.id, 0.05, 7);
    ASSERT_TRUE(g.ok()) << spec.name << ": " << g.status().ToString();
    EXPECT_EQ(g->num_labels(), spec.num_labels) << spec.name;
    EXPECT_GT(g->num_edges(), 0u) << spec.name;
    // Vertices within the scaled budget.
    EXPECT_LE(g->num_vertices(),
              static_cast<size_t>(spec.num_vertices * 0.05) + 1)
        << spec.name;
  }
}

TEST(DatasetsTest, MorenoLikeHasSkewedLabels) {
  auto g = BuildDataset(DatasetId::kMorenoHealth, 0.2, 42);
  ASSERT_TRUE(g.ok());
  std::vector<uint64_t> cards;
  for (LabelId l = 0; l < g->num_labels(); ++l) {
    cards.push_back(g->LabelCardinality(l));
  }
  std::sort(cards.begin(), cards.end());
  EXPECT_GT(cards.back(), cards.front() * 3);  // strong skew
}

TEST(DatasetsTest, RejectsBadScale) {
  EXPECT_FALSE(BuildDataset(DatasetId::kMorenoHealth, 0.0).ok());
  EXPECT_FALSE(BuildDataset(DatasetId::kMorenoHealth, 1.5).ok());
}

TEST(DatasetsTest, DeterministicPerSeed) {
  auto a = BuildDataset(DatasetId::kSnapEr, 0.05, 13);
  auto b = BuildDataset(DatasetId::kSnapEr, 0.05, 13);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_edges(), b->num_edges());
  auto ea = a->CollectEdges();
  auto eb = b->CollectEdges();
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
}

TEST(NumericLabelNamesTest, OneBased) {
  auto names = NumericLabelNames(3);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "1");
  EXPECT_EQ(names[2], "3");
}

}  // namespace
}  // namespace pathest
