// Unit tests for Status/Result, logging, timer, CSV, and RNG utilities.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace pathest {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists, StatusCode::kIOError,
        StatusCode::kNotImplemented, StatusCode::kInternal,
        StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    PATHEST_RETURN_NOT_OK(Status::NotFound("x"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kNotFound);
  auto succeeds = []() -> Status {
    PATHEST_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("too big"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.status().message(), "too big");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(CheckTest, AbortsOnFailure) {
  EXPECT_DEATH(PATHEST_CHECK(false, "invariant broken"), "invariant broken");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(99);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(42);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfDistribution zipf(4, 0.0);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(zipf.Pmf(i), 0.25, 1e-9);
  }
}

TEST(ZipfTest, SkewFavorsLowIndexes) {
  ZipfDistribution zipf(10, 1.0);
  for (uint64_t i = 1; i < 10; ++i) {
    EXPECT_GT(zipf.Pmf(i - 1), zipf.Pmf(i));
  }
  // Classic harmonic ratio: pmf(0) / pmf(1) == 2.
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(1), 2.0, 1e-9);
}

TEST(ZipfTest, SamplesMatchPmf) {
  ZipfDistribution zipf(5, 1.0);
  Rng rng(3);
  constexpr int kDraws = 200000;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(&rng)];
  for (uint64_t i = 0; i < 5; ++i) {
    double expected = zipf.Pmf(i) * kDraws;
    EXPECT_NEAR(counts[i], expected, expected * 0.05 + 50);
  }
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  // Burn a little CPU.
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GT(timer.ElapsedNanos(), 0);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  double before = timer.ElapsedMicros();
  timer.Reset();
  EXPECT_LE(timer.ElapsedMicros(), before + 1e6);
}

TEST(CsvTest, QuotingRules) {
  EXPECT_EQ(CsvWriter::QuoteCell("plain"), "plain");
  EXPECT_EQ(CsvWriter::QuoteCell("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::QuoteCell("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::QuoteCell("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WritesFile) {
  std::string path =
      (std::filesystem::temp_directory_path() / "pathest_csv_test.csv")
          .string();
  CsvWriter writer;
  ASSERT_TRUE(writer.Open(path, {"a", "b"}).ok());
  ASSERT_TRUE(writer.WriteRow({"1", "x,y"}).ok());
  ASSERT_TRUE(writer.Close().ok());
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), "a,b\n1,\"x,y\"\n");
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsWidthMismatch) {
  std::string path =
      (std::filesystem::temp_directory_path() / "pathest_csv_test2.csv")
          .string();
  CsvWriter writer;
  ASSERT_TRUE(writer.Open(path, {"a", "b"}).ok());
  EXPECT_EQ(writer.WriteRow({"only-one"}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(writer.Close().ok());
  std::remove(path.c_str());
}

TEST(CsvTest, CellFormatting) {
  EXPECT_EQ(CsvCell(uint64_t{42}), "42");
  EXPECT_EQ(CsvCell(int64_t{-3}), "-3");
  EXPECT_EQ(CsvCell(0.5), "0.5");
}

TEST(LoggingTest, RespectsLevel) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  PATHEST_LOG(Info) << "should be suppressed";
  SetLogLevel(prev);
}

}  // namespace
}  // namespace pathest
