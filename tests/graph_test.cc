// Unit tests for the labeled graph, builder, IO, and stats.

#include <bit>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "test_util.h"

namespace pathest {
namespace {

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary dict;
  LabelId a = dict.Intern("knows");
  LabelId b = dict.Intern("likes");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("knows"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(a), "knows");
}

TEST(LabelDictionaryTest, FindUnknownFails) {
  LabelDictionary dict;
  dict.Intern("a");
  auto missing = dict.Find("nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(GraphBuilderTest, BuildsAdjacency) {
  Graph g = testing_util::SmallGraph();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_labels(), 3u);
  EXPECT_EQ(g.num_edges(), 6u);

  LabelId a = *g.labels().Find("a");
  LabelId b = *g.labels().Find("b");
  auto n0a = g.OutNeighbors(0, a);
  ASSERT_EQ(n0a.size(), 2u);
  EXPECT_EQ(n0a[0], 1u);
  EXPECT_EQ(n0a[1], 2u);
  EXPECT_TRUE(g.OutNeighbors(0, b).empty());
  EXPECT_EQ(g.OutNeighbors(1, b).size(), 1u);
}

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder builder;
  builder.AddEdge(0, "x", 1);
  builder.AddEdge(0, "x", 1);  // duplicate triple
  builder.AddEdge(0, "y", 1);  // same pair, different label: kept
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(GraphBuilderTest, SetNumVerticesReservesIsolated) {
  GraphBuilder builder;
  builder.AddEdge(0, "x", 1);
  builder.SetNumVertices(10);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 10u);
  EXPECT_TRUE(g->OutNeighbors(9, 0).empty());
}

TEST(GraphBuilderTest, ReverseAdjacency) {
  Graph g = testing_util::SmallGraph();
  ASSERT_TRUE(g.has_reverse());
  LabelId b = *g.labels().Find("b");
  auto in3b = g.InNeighbors(3, b);
  ASSERT_EQ(in3b.size(), 2u);
  EXPECT_EQ(in3b[0], 1u);
  EXPECT_EQ(in3b[1], 2u);
}

TEST(GraphBuilderTest, NoReverseByDefault) {
  GraphBuilder builder;
  builder.AddEdge(0, "x", 1);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->has_reverse());
}

TEST(GraphTest, LabelCardinality) {
  Graph g = testing_util::SmallGraph();
  EXPECT_EQ(g.LabelCardinality(*g.labels().Find("a")), 3u);
  EXPECT_EQ(g.LabelCardinality(*g.labels().Find("b")), 2u);
  EXPECT_EQ(g.LabelCardinality(*g.labels().Find("c")), 1u);
}

TEST(GraphTest, CollectEdgesRoundTrips) {
  Graph g = testing_util::SmallGraph();
  auto edges = g.CollectEdges();
  EXPECT_EQ(edges.size(), g.num_edges());
  GraphBuilder rebuild;
  for (const Edge& e : edges) {
    rebuild.AddEdge(e.src, g.labels().Name(e.label), e.dst);
  }
  auto g2 = rebuild.Build();
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_edges(), g.num_edges());
}

TEST(GraphIoTest, WriteThenReadRoundTrips) {
  Graph g = testing_util::SmallGraph();
  std::ostringstream out;
  ASSERT_TRUE(WriteGraphText(g, &out).ok());
  std::istringstream in(out.str());
  auto g2 = ReadGraphText(&in);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_edges(), g.num_edges());
  EXPECT_EQ(g2->num_vertices(), g.num_vertices());
  EXPECT_EQ(g2->num_labels(), g.num_labels());
}

TEST(GraphIoTest, IgnoresCommentsAndBlanks) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "0 knows 1  # trailing comment\n"
      "1 knows 2\n");
  auto g = ReadGraphText(&in);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(GraphIoTest, RejectsMalformedLine) {
  std::istringstream in("0 knows\n");
  auto g = ReadGraphText(&in);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
}

TEST(GraphIoTest, MissingFileFails) {
  auto g = LoadGraphFile("/nonexistent/path/graph.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
}

TEST(GraphStatsTest, ComputesTable3Columns) {
  Graph g = testing_util::SmallGraph();
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.num_edges, 6u);
  EXPECT_EQ(stats.num_labels, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_out_degree, 6.0 / 4.0);
  EXPECT_EQ(stats.max_label_out_degree, 2u);
  EXPECT_EQ(stats.num_sink_vertices, 0u);
  std::string text = FormatGraphStats(g, stats);
  EXPECT_NE(text.find("vertices: 4"), std::string::npos);
  EXPECT_NE(text.find("a: 3"), std::string::npos);
}

TEST(GraphStatsTest, CountsSinks) {
  GraphBuilder builder;
  builder.AddEdge(0, "x", 1);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  GraphStats stats = ComputeGraphStats(*g);
  EXPECT_EQ(stats.num_sink_vertices, 1u);  // vertex 1
}

// Cross-checks the vertex-major, label-segmented view against the
// per-label CSR: every (vertex, label) cell with edges must appear as
// exactly one segment whose targets equal OutNeighbors, labels ascending
// within a vertex, with no extra segments.
TEST(GraphTest, VertexMajorViewMatchesPerLabelCsr) {
  Graph g = testing_util::SmallGraph();
  const Graph::VertexMajorView vm = g.VertexMajor();
  size_t segments_seen = 0;
  uint64_t targets_seen = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    LabelId prev_label = 0;
    for (uint64_t s = vm.seg_offsets[v]; s < vm.seg_offsets[v + 1]; ++s) {
      const LabelId l = vm.seg_labels[s];
      if (s > vm.seg_offsets[v]) EXPECT_LT(prev_label, l) << "v=" << v;
      prev_label = l;
      auto expected = g.OutNeighbors(v, l);
      const uint64_t begin = vm.tgt_offsets[s];
      const uint64_t end = vm.tgt_offsets[s + 1];
      ASSERT_EQ(end - begin, expected.size()) << "v=" << v << " l=" << l;
      for (uint64_t e = begin; e < end; ++e) {
        EXPECT_EQ(vm.targets[e], expected[e - begin]) << "v=" << v;
      }
      ++segments_seen;
      targets_seen += end - begin;
    }
    // No cell with edges may be missing from the directory.
    for (LabelId l = 0; l < g.num_labels(); ++l) {
      if (g.OutNeighbors(v, l).empty()) continue;
      bool found = false;
      for (uint64_t s = vm.seg_offsets[v]; s < vm.seg_offsets[v + 1]; ++s) {
        found |= vm.seg_labels[s] == l;
      }
      EXPECT_TRUE(found) << "missing segment v=" << v << " l=" << l;
    }
  }
  EXPECT_EQ(targets_seen, g.num_edges());
  EXPECT_GT(segments_seen, 0u);
}

TEST(GraphTest, AdjacencyBitmapPlaneMatchesCsr) {
  Graph g = testing_util::GraphWithCardinalities({{"p", 40}, {"q", 9}});
  const Graph::AdjacencyPlane plane = g.AdjacencyBitmaps();
  ASSERT_NE(plane.rows, nullptr);  // small graph: always materialized
  ASSERT_EQ(plane.stride_words, (g.num_vertices() + 63) / 64);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (LabelId l = 0; l < g.num_labels(); ++l) {
      const uint64_t* row =
          plane.rows +
          (static_cast<size_t>(v) * g.num_labels() + l) * plane.stride_words;
      std::vector<VertexId> from_row;
      for (size_t w = 0; w < plane.stride_words; ++w) {
        uint64_t word = row[w];
        while (word != 0) {
          from_row.push_back(static_cast<VertexId>(
              (w << 6) + static_cast<size_t>(std::countr_zero(word))));
          word &= word - 1;
        }
      }
      auto expected = g.OutNeighbors(v, l);
      ASSERT_EQ(from_row.size(), expected.size()) << "v=" << v << " l=" << l;
      for (size_t i = 0; i < from_row.size(); ++i) {
        EXPECT_EQ(from_row[i], expected[i]) << "v=" << v << " l=" << l;
      }
    }
  }
}

TEST(TestUtilTest, GraphWithCardinalitiesIsExact) {
  Graph g = testing_util::GraphWithCardinalities({{"p", 7}, {"q", 3}});
  EXPECT_EQ(g.LabelCardinality(*g.labels().Find("p")), 7u);
  EXPECT_EQ(g.LabelCardinality(*g.labels().Find("q")), 3u);
  EXPECT_EQ(g.num_edges(), 10u);
}

}  // namespace
}  // namespace pathest
