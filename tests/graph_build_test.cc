// The ingest determinism contract (graph_builder.h, graph_io.h): the
// counting-sort Build is bit-identical to the seed's global-sort
// BuildReference at every thread count — CSRs, vertex-major arrays, and
// plane — on generated ER and forest-fire graphs large enough to take the
// parallel path; the hub plane obeys its degree-threshold/budget contract;
// the chunked from_chars reader preserves the line-oriented istream
// semantics (skip lines, error line numbers, id range checks) and
// round-trips ~100k-edge graphs through the streaming writer.

#include <bit>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "gen/label_assigner.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace pathest {
namespace {

Graph ErdosRenyiGraph(size_t num_vertices, size_t num_edges,
                      size_t num_labels, uint64_t seed) {
  UniformLabelAssigner labels(num_labels);
  ErdosRenyiParams params;
  params.num_vertices = num_vertices;
  params.num_edges = num_edges;
  params.seed = seed;
  auto g = GenerateErdosRenyi(params, &labels);
  PATHEST_CHECK(g.ok(), "Erdős–Rényi generation failed");
  return std::move(g).ValueOrDie();
}

Graph ForestFireGraph(size_t num_vertices, size_t num_labels, uint64_t seed) {
  UniformLabelAssigner labels(num_labels);
  ForestFireParams params;
  params.num_vertices = num_vertices;
  params.seed = seed;
  auto g = GenerateForestFire(params, &labels);
  PATHEST_CHECK(g.ok(), "forest fire generation failed");
  return std::move(g).ValueOrDie();
}

// A builder loaded with `graph`'s exact edge multiset and label order.
GraphBuilder BuilderFrom(const Graph& graph) {
  GraphBuilder out;
  out.Adopt(graph.labels(), graph.CollectEdges(), graph.num_vertices());
  return out;
}

// Asserts Build at threads {1, 2, 4} is bit-identical to BuildReference,
// with and without reverse adjacency.
void ExpectBuildDeterminism(const Graph& source, bool expect_parallel) {
  for (bool with_reverse : {false, true}) {
    GraphBuilder builder = BuilderFrom(source);
    const auto reference = builder.BuildReference(with_reverse);
    ASSERT_TRUE(reference.ok());
    for (size_t threads : {1u, 2u, 4u}) {
      GraphBuildOptions options;
      options.with_reverse = with_reverse;
      options.num_threads = threads;
      GraphBuildStats stats;
      const auto built = builder.Build(options, &stats);
      ASSERT_TRUE(built.ok());
      EXPECT_TRUE(built->IdenticalTo(*reference))
          << "threads=" << threads << " reverse=" << with_reverse;
      if (expect_parallel) {
        EXPECT_EQ(stats.num_threads, threads) << "parallel path not taken";
      }
    }
  }
}

TEST(GraphBuildTest, ErdosRenyiDeterminismGrid) {
  // 40k edges is past kParallelBuildMinEdges, so threads {2, 4} genuinely
  // exercise the fan-out (asserted via the resolved stats thread count).
  ExpectBuildDeterminism(ErdosRenyiGraph(2000, 40000, 5, 11),
                         /*expect_parallel=*/true);
}

TEST(GraphBuildTest, ForestFireDeterminismGrid) {
  ExpectBuildDeterminism(ForestFireGraph(2500, 4, 23),
                         /*expect_parallel=*/false);
}

TEST(GraphBuildTest, DuplicateEdgesDedupIdentically) {
  // Duplicates must vanish inside the (label, src) buckets exactly as the
  // global sort + unique removes them.
  const Graph source = ErdosRenyiGraph(1500, 30000, 4, 7);
  std::vector<Edge> edges = source.CollectEdges();
  const size_t original = edges.size();
  for (size_t i = 0; i < original; i += 3) edges.push_back(edges[i]);
  GraphBuilder builder;
  builder.Adopt(source.labels(), std::move(edges), source.num_vertices());
  const auto reference = builder.BuildReference(true);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->num_edges(), source.num_edges());
  for (size_t threads : {1u, 4u}) {
    GraphBuildOptions options;
    options.with_reverse = true;
    options.num_threads = threads;
    const auto built = builder.Build(options);
    ASSERT_TRUE(built.ok());
    EXPECT_TRUE(built->IdenticalTo(*reference)) << "threads=" << threads;
  }
}

TEST(GraphBuildTest, AdoptMatchesIncrementalAdds) {
  const Graph source = testing_util::SmallGraph();
  GraphBuilder incremental;
  for (const std::string& name : source.labels().names()) {
    incremental.AddLabel(name);
  }
  for (const Edge& e : source.CollectEdges()) {
    incremental.AddEdge(e.src, e.label, e.dst);
  }
  incremental.SetNumVertices(source.num_vertices());
  GraphBuilder adopted;
  adopted.Adopt(source.labels(), source.CollectEdges(),
                source.num_vertices());
  const auto a = incremental.Build(true);
  const auto b = adopted.Build(true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->IdenticalTo(*b));
}

TEST(GraphBuildTest, HubPlaneContract) {
  // Shrink the budget so dense cannot fit; the hub plane must keep (only)
  // the cells whose out-degree crosses the graph-deterministic threshold,
  // stay within the byte budget, and index rows through the segment
  // directory consistently with the CSRs.
  const Graph source = ErdosRenyiGraph(200, 2400, 3, 29);
  GraphBuilder builder = BuilderFrom(source);
  GraphBuildOptions options;
  options.plane_budget_bytes = 1024;  // dense needs 19200 B here
  GraphBuildStats stats;
  const auto built = builder.Build(options, &stats);
  ASSERT_TRUE(built.ok());
  ASSERT_EQ(stats.plane_kind, PlaneKind::kHub);
  EXPECT_LE(stats.plane_bytes, options.plane_budget_bytes);
  EXPECT_GT(stats.plane_rows, 0u);
  const Graph::AdjacencyPlane plane = built->AdjacencyBitmaps();
  ASSERT_EQ(plane.kind, PlaneKind::kHub);
  ASSERT_NE(plane.seg_rows, nullptr);
  EXPECT_EQ(plane.hub_degree_threshold, stats.hub_degree_threshold);
  EXPECT_GE(plane.hub_degree_threshold, 1u);

  size_t rows_seen = 0;
  for (VertexId v = 0; v < built->num_vertices(); ++v) {
    for (LabelId l = 0; l < built->num_labels(); ++l) {
      const auto neighbors = built->OutNeighbors(v, l);
      const uint64_t* row = built->PlaneRow(v, l);
      if (neighbors.size() >= plane.hub_degree_threshold &&
          !neighbors.empty()) {
        ASSERT_NE(row, nullptr) << "v=" << v << " l=" << l;
        ++rows_seen;
        // The row holds exactly the cell's successor set.
        size_t bits = 0;
        for (size_t w = 0; w < plane.stride_words; ++w) {
          bits += static_cast<size_t>(std::popcount(row[w]));
        }
        EXPECT_EQ(bits, neighbors.size());
        for (const VertexId u : neighbors) {
          EXPECT_TRUE(row[u >> 6] & (uint64_t{1} << (u & 63)));
        }
      } else {
        EXPECT_EQ(row, nullptr) << "v=" << v << " l=" << l;
      }
    }
  }
  EXPECT_EQ(rows_seen, stats.plane_rows);

  // The decision is thread-invariant like everything else.
  for (size_t threads : {2u, 4u}) {
    GraphBuildOptions threaded = options;
    threaded.num_threads = threads;
    const auto again = builder.Build(threaded);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->IdenticalTo(*built)) << "threads=" << threads;
  }
}

TEST(GraphBuildTest, PlanePolicyForcing) {
  const Graph source = ErdosRenyiGraph(150, 1200, 3, 5);
  GraphBuilder builder = BuilderFrom(source);
  GraphBuildStats stats;
  GraphBuildOptions options;
  options.plane = PlanePolicy::kNone;
  ASSERT_TRUE(builder.Build(options, &stats).ok());
  EXPECT_EQ(stats.plane_kind, PlaneKind::kNone);
  options.plane = PlanePolicy::kDense;
  ASSERT_TRUE(builder.Build(options, &stats).ok());
  EXPECT_EQ(stats.plane_kind, PlaneKind::kDense);
  options.plane = PlanePolicy::kHub;  // hub even though dense would fit
  ASSERT_TRUE(builder.Build(options, &stats).ok());
  EXPECT_EQ(stats.plane_kind, PlaneKind::kHub);
  // kAuto under the default budget picks dense for this small graph, and
  // the legacy bool overload is kAuto.
  options.plane = PlanePolicy::kAuto;
  ASSERT_TRUE(builder.Build(options, &stats).ok());
  EXPECT_EQ(stats.plane_kind, PlaneKind::kDense);
}

TEST(GraphBuildTest, StreamingWriterRoundTripsLargeGraph) {
  // ~100k edges through WriteGraphText -> ReadGraphText: the streamed
  // output and the chunked parallel parse must reproduce the graph
  // bit-identically (the text is > 1 MB, so threads 4 takes the
  // multi-chunk path).
  const Graph source = ErdosRenyiGraph(5000, 100000, 8, 3);
  std::ostringstream out;
  ASSERT_TRUE(WriteGraphText(source, &out).ok());
  const std::string text = out.str();
  ASSERT_GT(text.size(), 1u << 20);
  for (size_t threads : {1u, 4u}) {
    std::istringstream in(text);
    GraphLoadOptions options;
    options.num_threads = threads;
    GraphLoadStats stats;
    const auto loaded = ReadGraphText(&in, options, &stats);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded->IdenticalTo(source)) << "threads=" << threads;
    if (threads == 4) EXPECT_GT(stats.num_chunks, 1u);
  }
}

TEST(GraphBuildTest, StreamingWriterMatchesCollectEdgesOrder) {
  const Graph g = testing_util::SmallGraph();
  std::ostringstream streamed;
  ASSERT_TRUE(WriteGraphText(g, &streamed).ok());
  std::ostringstream collected;
  collected << "# pathest edge-list v1: <src> <label> <dst>\n";
  for (const Edge& e : g.CollectEdges()) {
    collected << e.src << ' ' << g.labels().Name(e.label) << ' ' << e.dst
              << '\n';
  }
  EXPECT_EQ(streamed.str(), collected.str());
}

// Loads `text` through the chunked reader at 4 threads, padding it past
// the serial-parse cutoff with trailing comment lines so the parallel
// path is what's exercised.
Result<Graph> ParseParallel(std::string text) {
  while (text.size() < (1u << 20) + 1024) {
    text += "# padding comment line to push the input past the serial "
            "parse cutoff\n";
  }
  std::istringstream in(text);
  GraphLoadOptions options;
  options.num_threads = 4;
  return ReadGraphText(&in, options);
}

TEST(GraphBuildTest, ParallelReaderPreservesErrorLines) {
  // Earliest malformed line wins, by its exact line number and
  // comment-stripped text — even when a later chunk also fails.
  std::string text = "0 a 1\n1 b 2\n";
  text += "2 oops\n";  // line 3: missing dst
  for (int i = 0; i < 40000; ++i) text += "3 c 4\n";
  text += "5 also bad\n";
  auto result = ParseParallel(text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().ToString(),
            "IOError: malformed edge at line 3: '2 oops'");

  auto range = ParseParallel("0 a 1\n7 x 4294967296\n");
  ASSERT_FALSE(range.ok());
  EXPECT_EQ(range.status().ToString(),
            "OutOfRange: vertex id exceeds 32 bits at line 2");
}

TEST(GraphBuildTest, ParallelReaderKeepsIstreamLineSemantics) {
  // Skipped lines (blank, comment, non-numeric or overflowing first
  // token), trailing junk after the dst, and '#' comment stripping must
  // all match the line-oriented istream reader.
  const std::string text =
      "# full comment line\n"
      "\n"
      "   \t \n"
      "junk-first-token a 1\n"
      "99999999999999999999999 a 1\n"
      "0 a 1 trailing junk ignored\n"
      "1 b 2   # inline comment\n"
      "+2 a 0\n";
  auto graph = ParseParallel(text);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 3u);
  EXPECT_EQ(graph->num_vertices(), 3u);
  ASSERT_EQ(graph->num_labels(), 2u);
  EXPECT_EQ(graph->labels().Name(0), "a");  // first-appearance order
  EXPECT_EQ(graph->labels().Name(1), "b");
  const auto a = graph->labels().Find("a");
  ASSERT_TRUE(a.ok());
  const auto out0 = graph->OutNeighbors(0, *a);
  ASSERT_EQ(out0.size(), 1u);
  EXPECT_EQ(out0[0], 1u);
}

}  // namespace
}  // namespace pathest
