// Tests for zero-copy estimator construction over mapped binary catalog
// v2 files (core/mapped_catalog.h + util/mmap_file.h): bit-identity with
// the copying loader across the whole serializable surface, the tiered
// verification matrix, and the mapping primitive itself.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/mapped_catalog.h"
#include "core/serialize.h"
#include "ordering/factory.h"
#include "ordering/sum_based.h"
#include "path/selectivity.h"
#include "test_util.h"
#include "util/crc32c.h"
#include "util/mmap_file.h"
#include "util/safe_io.h"

namespace pathest {
namespace {

namespace fs = std::filesystem;
using testing_util::SmallGraph;

fs::path TestDir() {
  const fs::path dir = fs::temp_directory_path() / "pathest_mmap_test";
  fs::create_directories(dir);
  return dir;
}

PathHistogram BuildOn(const Graph& graph, const std::string& method,
                      size_t k, size_t beta) {
  auto map = ComputeSelectivities(graph, k);
  PATHEST_CHECK(map.ok(), "selectivities failed");
  auto ordering = MakeOrdering(method, graph, k);
  PATHEST_CHECK(ordering.ok(), "ordering failed");
  auto est = PathHistogram::Build(*map, std::move(*ordering),
                                  HistogramType::kVOptimal, beta);
  PATHEST_CHECK(est.ok(), "build failed");
  return std::move(*est);
}

std::string SaveV2(const Graph& graph, const PathHistogram& est,
                   const std::string& filename) {
  const std::string path = (TestDir() / filename).string();
  PATHEST_CHECK(
      SavePathHistogram(est, graph, path, CatalogFormat::kBinaryV2).ok(),
      "v2 save failed");
  return path;
}

// ---------------------------------------------------------- MappedFile

TEST(MappedFile, MissingFileIsNotFound) {
  EXPECT_EQ(MappedFile::Open((TestDir() / "missing").string())
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(StatFileId((TestDir() / "missing").string()).status().code(),
            StatusCode::kNotFound);
}

TEST(MappedFile, EmptyFileMapsToEmptyView) {
  const std::string path = (TestDir() / "empty").string();
  { std::ofstream(path, std::ios::trunc); }
  auto file = MappedFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_TRUE(file->valid());
  EXPECT_EQ(file->size(), 0u);
  EXPECT_EQ(file->view().size(), 0u);
  fs::remove(path);
}

TEST(MappedFile, ContentsMatchAndIdChangesOnRewrite) {
  const std::string path = (TestDir() / "blob").string();
  ASSERT_TRUE(AtomicWriteFile(path, "first generation").ok());
  auto a = MappedFile::Open(path);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->view(), "first generation");
  // The atomic rewrite publishes a NEW inode: ids must differ even though
  // the size could in principle coincide.
  ASSERT_TRUE(AtomicWriteFile(path, "later generation").ok());
  auto b = MappedFile::Open(path);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->view(), "later generation");
  EXPECT_FALSE(a->id() == b->id());
  // The old mapping still serves the OLD bytes (MAP_PRIVATE + the rename
  // discipline: nothing ever writes the old inode in place).
  EXPECT_EQ(a->view(), "first generation");
  fs::remove(path);
}

TEST(MappedFile, DirectoryIsInvalidArgument) {
  EXPECT_EQ(MappedFile::Open(TestDir().string()).status().code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------- bit-identity across the surface

class MmapIdentityTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {};

TEST_P(MmapIdentityTest, MappedEstimatorIsBitIdenticalToCopyingLoader) {
  const auto& [method, k] = GetParam();
  Graph graph = SmallGraph();
  PathHistogram original = BuildOn(graph, method, k, 5);
  const std::string path =
      SaveV2(graph, original,
             "ident_" + method + "_k" + std::to_string(k) + ".stats");

  auto copied = LoadPathHistogram(path);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  auto mapped = MappedCatalogEntry::Open(path, CatalogVerify::kChecksums);
  ASSERT_TRUE(mapped.ok()) << method << " k=" << k << ": "
                           << mapped.status().ToString();

  const std::string canonical = method == "sum-card" ? "sum-based" : method;
  EXPECT_EQ((*mapped)->ordering_name(), canonical);
  EXPECT_EQ((*mapped)->estimator().ordering().name(), canonical);
  EXPECT_EQ((*mapped)->labels().names(), graph.labels().names());
  EXPECT_EQ((*mapped)->histogram_type(), HistogramType::kVOptimal);
  EXPECT_EQ((*mapped)->mapped_bytes(), fs::file_size(path));
  EXPECT_GT((*mapped)->resident_bytes(), 0u);

  // Bit-identical to BOTH the original estimator and the copying loader,
  // over the entire domain — the acceptance criterion of the mmap path.
  PathSpace space(graph.num_labels(), k);
  const Estimator& me = (*mapped)->estimator();
  RankScratch scratch;
  scratch.Reserve(graph.num_labels());
  space.ForEach([&](const LabelPath& p) {
    const double want = original.Estimate(p);
    ASSERT_EQ(me.Estimate(p, scratch), want)
        << method << " k=" << k << " " << p.ToIdString();
    ASSERT_EQ(copied->estimator.Estimate(p), want)
        << method << " k=" << k << " " << p.ToIdString();
  });

  // Rank/Unrank round-trips through the mapped ordering agree with the
  // original ordering everywhere (this exercises the borrowed stage-2/3
  // tables end to end, including Unrank's lazily built legacy blocks).
  const Ordering& mo = me.ordering();
  const Ordering& oo = original.ordering();
  for (uint64_t i = 0; i < space.size(); ++i) {
    const LabelPath p = oo.Unrank(i);
    ASSERT_EQ(mo.Rank(p), i) << method << " k=" << k;
    ASSERT_EQ(mo.Unrank(i).ToIdString(), p.ToIdString())
        << method << " k=" << k;
  }
  fs::remove(path);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrderingsAllK, MmapIdentityTest,
    ::testing::Combine(
        ::testing::Values("num-alph", "num-card", "lex-alph", "lex-card",
                          "sum-based", "sum-card", "sum-alph", "gray-alph",
                          "gray-card"),
        ::testing::Values(size_t{2}, size_t{3}, size_t{4})),
    [](const ::testing::TestParamInfo<std::tuple<std::string, size_t>>&
           info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_k" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------- verification matrix

class VerifyTierTest : public ::testing::Test {
 protected:
  VerifyTierTest() : graph_(SmallGraph()) {
    est_ = std::make_unique<PathHistogram>(
        BuildOn(graph_, "sum-based", 3, 6));
    path_ = SaveV2(graph_, *est_, "verify_tiers.stats");
  }
  ~VerifyTierTest() override { fs::remove(path_); }

  // Rewrites the file with one byte flipped at `offset`.
  void FlipByteAt(size_t offset) {
    std::string bytes;
    PATHEST_CHECK(ReadFileToString(path_, &bytes).ok(), "read failed");
    PATHEST_CHECK(offset < bytes.size(), "offset past file");
    bytes[offset] ^= 0x01;
    PATHEST_CHECK(AtomicWriteFile(path_, bytes).ok(), "write failed");
  }

  // File offset of the histogram section's payload (first page-aligned
  // section after the metadata pages).
  size_t HistogramSectionOffset() {
    std::string bytes;
    PATHEST_CHECK(ReadFileToString(path_, &bytes).ok(), "read failed");
    uint32_t count;
    std::memcpy(&count, bytes.data() + 12, 4);
    for (uint32_t i = 0; i < count; ++i) {
      const size_t at = binfmt::kHeaderBytes + i * binfmt::kSectionEntryBytes;
      uint32_t id;
      std::memcpy(&id, bytes.data() + at, 4);
      if (id == binfmt::kSectionHistogram) {
        uint64_t offset;
        std::memcpy(&offset, bytes.data() + at + 8, 8);
        return offset;
      }
    }
    PATHEST_CHECK(false, "histogram section missing");
    return 0;
  }

  Graph graph_;
  std::unique_ptr<PathHistogram> est_;
  std::string path_;
};

TEST_F(VerifyTierTest, AllTiersAcceptAHealthyFile) {
  for (CatalogVerify tier :
       {CatalogVerify::kTrusted, CatalogVerify::kChecksums,
        CatalogVerify::kFull}) {
    auto entry = MappedCatalogEntry::Open(path_, tier);
    ASSERT_TRUE(entry.ok())
        << CatalogVerifyName(tier) << ": " << entry.status().ToString();
    // Identical estimates regardless of how much verification ran.
    PathSpace space(graph_.num_labels(), 3);
    RankScratch scratch;
    scratch.Reserve(graph_.num_labels());
    space.ForEach([&](const LabelPath& p) {
      ASSERT_EQ((*entry)->estimator().Estimate(p, scratch),
                est_->Estimate(p));
    });
  }
}

TEST_F(VerifyTierTest, BulkFlipPassesTrustedButFailsCheckedTiers) {
  // Flip a byte inside the mean serving row — a location no always-on
  // shape check can see, only the bulk CRC.
  uint64_t beta;
  {
    std::string bytes;
    ASSERT_TRUE(ReadFileToString(path_, &bytes).ok());
    std::memcpy(&beta, bytes.data() + HistogramSectionOffset(), 8);
  }
  FlipByteAt(HistogramSectionOffset() +
             binfmt::HistogramLayout(beta).mean_off + 3);
  // kTrusted skips bulk CRCs by contract — it must still OPEN (shape
  // prologs are intact); this is exactly why it is only for bytes already
  // verified this generation.
  EXPECT_TRUE(
      MappedCatalogEntry::Open(path_, CatalogVerify::kTrusted).ok());
  for (CatalogVerify tier :
       {CatalogVerify::kChecksums, CatalogVerify::kFull}) {
    auto entry = MappedCatalogEntry::Open(path_, tier);
    ASSERT_FALSE(entry.ok()) << CatalogVerifyName(tier);
    EXPECT_EQ(entry.status().code(), StatusCode::kIOError);
  }
}

TEST_F(VerifyTierTest, MetadataFlipFailsEveryTier) {
  // Metadata sections are authenticated even under kTrusted. Flip a byte
  // in the first metadata page (section 1 starts at the first page).
  FlipByteAt(binfmt::kPageBytes + 2);
  for (CatalogVerify tier :
       {CatalogVerify::kTrusted, CatalogVerify::kChecksums,
        CatalogVerify::kFull}) {
    EXPECT_FALSE(MappedCatalogEntry::Open(path_, tier).ok())
        << CatalogVerifyName(tier);
  }
}

TEST_F(VerifyTierTest, WellFormedButWrongServingRowFailsOnlyFullTier) {
  // Overwrite the whole mean row with a WRONG but finite, CRC-consistent
  // value: recompute the section checksum so kChecksums cannot see it.
  // Only the full tier's rebuild comparison catches this class.
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path_, &bytes).ok());
  const size_t sec = HistogramSectionOffset();
  uint64_t beta;
  std::memcpy(&beta, bytes.data() + sec, 8);
  const binfmt::HistogramLayoutV2 hl = binfmt::HistogramLayout(beta);
  const double wrong = 42.0;
  for (uint64_t b = 0; b < beta; ++b) {
    std::memcpy(bytes.data() + sec + hl.mean_off + b * 8, &wrong, 8);
  }
  // Re-sign the section in its table entry.
  uint32_t count;
  std::memcpy(&count, bytes.data() + 12, 4);
  for (uint32_t i = 0; i < count; ++i) {
    const size_t at = binfmt::kHeaderBytes + i * binfmt::kSectionEntryBytes;
    uint32_t id;
    std::memcpy(&id, bytes.data() + at, 4);
    if (id != binfmt::kSectionHistogram) continue;
    const uint32_t crc = Crc32c(bytes.data() + sec, hl.payload_bytes);
    std::memcpy(bytes.data() + at + 4, &crc, 4);
  }
  // Re-sign the section table.
  const uint32_t tcrc = Crc32c(bytes.data() + binfmt::kHeaderBytes,
                               count * binfmt::kSectionEntryBytes);
  std::memcpy(bytes.data() + 28, &tcrc, 4);
  ASSERT_TRUE(AtomicWriteFile(path_, bytes).ok());

  EXPECT_TRUE(
      MappedCatalogEntry::Open(path_, CatalogVerify::kTrusted).ok());
  EXPECT_TRUE(
      MappedCatalogEntry::Open(path_, CatalogVerify::kChecksums).ok());
  auto full = MappedCatalogEntry::Open(path_, CatalogVerify::kFull);
  ASSERT_FALSE(full.ok());
  EXPECT_NE(full.status().message().find("fresh rebuild"),
            std::string::npos)
      << full.status().ToString();
}

TEST_F(VerifyTierTest, V1FileIsRejectedNotMisread) {
  const std::string v1 = (TestDir() / "v1_input.stats").string();
  ASSERT_TRUE(
      SavePathHistogram(*est_, graph_, v1, CatalogFormat::kBinary).ok());
  for (CatalogVerify tier :
       {CatalogVerify::kTrusted, CatalogVerify::kChecksums,
        CatalogVerify::kFull}) {
    auto entry = MappedCatalogEntry::Open(v1, tier);
    ASSERT_FALSE(entry.ok());
    EXPECT_EQ(entry.status().code(), StatusCode::kIOError);
  }
  fs::remove(v1);
}

}  // namespace
}  // namespace pathest
