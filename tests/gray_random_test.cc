// Tests specific to the Gray-code ordering and the random baseline.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/distribution.h"
#include "ordering/factory.h"
#include "ordering/gray.h"
#include "ordering/random_order.h"
#include "path/selectivity.h"
#include "test_util.h"

namespace pathest {
namespace {

TEST(GrayOrderingTest, AdjacentIndexesDifferInOneDigitByOne) {
  Graph g = testing_util::GraphWithCardinalities(
      {{"1", 5}, {"2", 9}, {"3", 2}, {"4", 7}});
  auto ordering = MakeOrdering("gray-card", g, 3);
  ASSERT_TRUE(ordering.ok());
  auto* gray = dynamic_cast<GrayOrdering*>(ordering->get());
  ASSERT_NE(gray, nullptr);
  const LabelRanking& ranking = gray->ranking();

  LabelPath prev = (*ordering)->Unrank(0);
  for (uint64_t i = 1; i < (*ordering)->size(); ++i) {
    LabelPath cur = (*ordering)->Unrank(i);
    if (cur.length() != prev.length()) {
      prev = cur;  // length-block boundary: no adjacency guarantee
      continue;
    }
    int diffs = 0;
    int step = 0;
    for (size_t j = 0; j < cur.length(); ++j) {
      int a = static_cast<int>(ranking.RankOf(prev.label(j)));
      int b = static_cast<int>(ranking.RankOf(cur.label(j)));
      if (a != b) {
        ++diffs;
        step = std::abs(a - b);
      }
    }
    EXPECT_EQ(diffs, 1) << "index " << i;
    EXPECT_EQ(step, 1) << "index " << i;
    prev = cur;
  }
}

TEST(GrayOrderingTest, FirstPathUsesRankOneEverywhere) {
  Graph g = testing_util::PaperExampleGraph();
  auto ordering = MakeOrdering("gray-card", g, 2);
  ASSERT_TRUE(ordering.ok());
  // Rank 1 label is "1" (lowest cardinality).
  EXPECT_EQ((*ordering)->Unrank(0).ToString(g.labels()), "1");
  EXPECT_EQ((*ordering)->Unrank(3).ToString(g.labels()), "1/1");
}

TEST(GrayOrderingTest, NameReflectsRanking) {
  Graph g = testing_util::PaperExampleGraph();
  EXPECT_EQ((*MakeOrdering("gray-alph", g, 2))->name(), "gray-alph");
  EXPECT_EQ((*MakeOrdering("gray-card", g, 2))->name(), "gray-card");
}

TEST(GrayOrderingTest, SmootherThanNumericalOnSkewedData) {
  // Gray traversal revisits similar rank prefixes consecutively, so the
  // total variation of the distribution should not exceed numerical's.
  Graph g = testing_util::SmallGraph();
  auto map = ComputeSelectivities(g, 4);
  ASSERT_TRUE(map.ok());
  auto gray = MakeOrdering("gray-card", g, 4);
  auto num = MakeOrdering("num-card", g, 4);
  ASSERT_TRUE(gray.ok());
  ASSERT_TRUE(num.ok());
  auto gray_dist = BuildDistribution(*map, **gray);
  auto num_dist = BuildDistribution(*map, **num);
  ASSERT_TRUE(gray_dist.ok());
  ASSERT_TRUE(num_dist.ok());
  EXPECT_LE(ProfileDistribution(*gray_dist).total_variation,
            ProfileDistribution(*num_dist).total_variation * 1.05);
}

TEST(RandomOrderingTest, DeterministicPerSeed) {
  PathSpace space(3, 3);
  RandomOrdering a(space, 7);
  RandomOrdering b(space, 7);
  RandomOrdering c(space, 8);
  bool any_diff = false;
  for (uint64_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(a.Unrank(i), b.Unrank(i));
    any_diff = any_diff || !(a.Unrank(i) == c.Unrank(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomOrderingTest, IsABijection) {
  PathSpace space(4, 3);
  RandomOrdering ordering(space, 99);
  std::set<uint64_t> seen;
  space.ForEach([&](const LabelPath& p) {
    uint64_t i = ordering.Rank(p);
    EXPECT_TRUE(seen.insert(i).second);
    EXPECT_EQ(ordering.Unrank(i), p);
  });
  EXPECT_EQ(seen.size(), space.size());
}

TEST(RandomOrderingTest, IsWorstOrderingForAccuracy) {
  // The whole point of the baseline: random ordering destroys locality, so
  // its total variation exceeds every structured ordering's.
  Graph g = testing_util::SmallGraph();
  auto map = ComputeSelectivities(g, 4);
  ASSERT_TRUE(map.ok());
  auto random = MakeOrdering("random", g, 4);
  ASSERT_TRUE(random.ok());
  auto random_dist = BuildDistribution(*map, **random);
  ASSERT_TRUE(random_dist.ok());
  double random_tv = ProfileDistribution(*random_dist).total_variation;
  for (const std::string& method : PaperOrderingNames()) {
    auto ordering = MakeOrdering(method, g, 4);
    ASSERT_TRUE(ordering.ok());
    auto dist = BuildDistribution(*map, **ordering);
    ASSERT_TRUE(dist.ok());
    EXPECT_LE(ProfileDistribution(*dist).total_variation, random_tv)
        << method;
  }
}

}  // namespace
}  // namespace pathest
