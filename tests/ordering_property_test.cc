// Property tests over every ordering method: bijection round-trips,
// stage-structure invariants, and ranking-rule consistency, swept with
// parameterized gtest across label-set sizes and path lengths.

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "ordering/factory.h"
#include "ordering/lexicographic.h"
#include "ordering/numerical.h"
#include "ordering/sum_based.h"
#include "test_util.h"

namespace pathest {
namespace {

// (method, num_labels, k)
using Param = std::tuple<std::string, size_t, size_t>;

class OrderingPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto& [method, num_labels, k] = GetParam();
    method_ = method;
    k_ = k;
    // Distinct, deliberately non-monotone cardinalities so that alphabetical
    // and cardinality rankings differ.
    std::vector<std::pair<std::string, uint64_t>> cards;
    for (size_t i = 0; i < num_labels; ++i) {
      uint64_t f = 10 + ((i * 37 + 13) % 100) * 3;
      cards.push_back({std::to_string(i + 1), f});
    }
    graph_ = std::make_unique<Graph>(
        testing_util::GraphWithCardinalities(cards));
    auto ordering = MakeOrdering(method_, *graph_, k_);
    ASSERT_TRUE(ordering.ok()) << ordering.status().ToString();
    ordering_ = std::move(*ordering);
  }

  std::string method_;
  size_t k_ = 0;
  std::unique_ptr<Graph> graph_;
  OrderingPtr ordering_;
};

TEST_P(OrderingPropertyTest, UnrankThenRankIsIdentity) {
  for (uint64_t i = 0; i < ordering_->size(); ++i) {
    LabelPath p = ordering_->Unrank(i);
    ASSERT_TRUE(ordering_->space().Contains(p)) << i;
    EXPECT_EQ(ordering_->Rank(p), i);
  }
}

TEST_P(OrderingPropertyTest, RankThenUnrankIsIdentity) {
  ordering_->space().ForEach([&](const LabelPath& p) {
    uint64_t i = ordering_->Rank(p);
    ASSERT_LT(i, ordering_->size());
    EXPECT_EQ(ordering_->Unrank(i), p);
  });
}

TEST_P(OrderingPropertyTest, IndexesAreAPermutation) {
  std::set<uint64_t> seen;
  ordering_->space().ForEach(
      [&](const LabelPath& p) { seen.insert(ordering_->Rank(p)); });
  EXPECT_EQ(seen.size(), ordering_->size());
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), ordering_->size() - 1);
}

TEST_P(OrderingPropertyTest, NumAndSumAreLengthMajor) {
  if (method_ != "num-alph" && method_ != "num-card" &&
      method_ != "sum-based" && method_ != "sum-alph") {
    GTEST_SKIP() << "length-major structure applies to num/sum orderings";
  }
  // Indexes of shorter paths all precede indexes of longer paths.
  size_t prev_len = 1;
  for (uint64_t i = 0; i < ordering_->size(); ++i) {
    size_t len = ordering_->Unrank(i).length();
    EXPECT_GE(len, prev_len) << "index " << i;
    prev_len = len;
  }
}

TEST_P(OrderingPropertyTest, SumBasedIsSummedRankMajorWithinLength) {
  if (method_ != "sum-based" && method_ != "sum-alph") {
    GTEST_SKIP() << "applies to sum orderings only";
  }
  auto* sum = dynamic_cast<SumBasedOrdering*>(ordering_.get());
  ASSERT_NE(sum, nullptr);
  const LabelRanking& ranking = sum->ranking();
  uint64_t prev_key = 0;
  for (uint64_t i = 0; i < ordering_->size(); ++i) {
    LabelPath p = ordering_->Unrank(i);
    uint64_t sr = 0;
    for (size_t j = 0; j < p.length(); ++j) sr += ranking.RankOf(p.label(j));
    // Key: (length, summed rank) must be non-decreasing over the domain.
    uint64_t key = (static_cast<uint64_t>(p.length()) << 32) | sr;
    EXPECT_GE(key, prev_key) << "index " << i;
    prev_key = key;
  }
}

TEST_P(OrderingPropertyTest, LexNeverPlacesExtensionBeforePrefix) {
  if (method_ != "lex-alph" && method_ != "lex-card") {
    GTEST_SKIP() << "prefix property is lex-specific";
  }
  // Dictionary order: a path always precedes every path it prefixes.
  ordering_->space().ForEach([&](const LabelPath& p) {
    if (p.length() < 2) return;
    EXPECT_LT(ordering_->Rank(p.Prefix(p.length() - 1)), ordering_->Rank(p));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrderingPropertyTest,
    ::testing::Combine(
        ::testing::Values("num-alph", "num-card", "lex-alph", "lex-card",
                          "sum-based", "sum-alph", "gray-alph", "gray-card",
                          "random"),
        ::testing::Values(2, 3, 5, 6),
        ::testing::Values(1, 2, 3, 4)),
    [](const ::testing::TestParamInfo<Param>& info) {
      auto name = std::get<0>(info.param) + "_L" +
                  std::to_string(std::get<1>(info.param)) + "_k" +
                  std::to_string(std::get<2>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// Larger single-shot round-trip at paper scale: 6 labels, k = 6 (|L_6| =
// 55986) for the two closed-form orderings and sum-based.
TEST(OrderingScaleTest, PaperScaleRoundTrip) {
  std::vector<std::pair<std::string, uint64_t>> cards;
  for (size_t i = 0; i < 6; ++i) {
    cards.push_back({std::to_string(i + 1), 100 + i * 17});
  }
  Graph graph = testing_util::GraphWithCardinalities(cards);
  for (const std::string& method : PaperOrderingNames()) {
    auto ordering = MakeOrdering(method, graph, 6);
    ASSERT_TRUE(ordering.ok());
    EXPECT_EQ((*ordering)->size(), 55986u);
    // Stride through the domain to keep runtime bounded.
    for (uint64_t i = 0; i < (*ordering)->size(); i += 97) {
      EXPECT_EQ((*ordering)->Rank((*ordering)->Unrank(i)), i);
    }
    // Always check the extremes.
    EXPECT_EQ((*ordering)->Rank((*ordering)->Unrank(0)), 0u);
    EXPECT_EQ((*ordering)->Rank((*ordering)->Unrank(55985)), 55985u);
  }
}

TEST(OrderingFactoryTest, RejectsUnknownMethod) {
  Graph graph = testing_util::PaperExampleGraph();
  EXPECT_EQ(MakeOrdering("bogus", graph, 2).status().code(),
            StatusCode::kNotFound);
}

TEST(OrderingFactoryTest, RejectsBadK) {
  Graph graph = testing_util::PaperExampleGraph();
  EXPECT_FALSE(MakeOrdering("num-alph", graph, 0).ok());
  EXPECT_FALSE(MakeOrdering("num-alph", graph, kMaxPathLength + 1).ok());
}

TEST(OrderingFactoryTest, PaperNamesAllConstruct) {
  Graph graph = testing_util::PaperExampleGraph();
  for (const std::string& name : PaperOrderingNames()) {
    auto ordering = MakeOrdering(name, graph, 3);
    ASSERT_TRUE(ordering.ok()) << name;
    EXPECT_EQ((*ordering)->name(), name);
  }
}

TEST(OrderingFactoryTest, SumCardAliasesSumBased) {
  Graph graph = testing_util::PaperExampleGraph();
  auto ordering = MakeOrdering("sum-card", graph, 2);
  ASSERT_TRUE(ordering.ok());
  EXPECT_EQ((*ordering)->name(), "sum-based");
}

}  // namespace
}  // namespace pathest
