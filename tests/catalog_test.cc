// Tests for the StatisticsCatalog integration layer.

#include <filesystem>

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/serialize.h"
#include "test_util.h"

namespace pathest {
namespace {

using testing_util::SmallGraph;

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : graph_(SmallGraph()) {}

  StatisticsCatalog MakeCatalog(size_t k = 3) {
    auto catalog = StatisticsCatalog::Analyze(graph_, k);
    PATHEST_CHECK(catalog.ok(), "analyze failed");
    return std::move(*catalog);
  }

  Graph graph_;
};

TEST_F(CatalogTest, AnalyzeComputesExactSelectivities) {
  StatisticsCatalog catalog = MakeCatalog();
  LabelId a = *graph_.labels().Find("a");
  EXPECT_EQ(catalog.ExactSelectivity(LabelPath{a}),
            graph_.LabelCardinality(a));
  EXPECT_EQ(catalog.k(), 3u);
}

TEST_F(CatalogTest, BuildAndQueryEstimators) {
  StatisticsCatalog catalog = MakeCatalog();
  CatalogEntryConfig config;
  config.ordering = "sum-based";
  config.num_buckets = 8;
  ASSERT_TRUE(catalog.BuildEstimator("default", config).ok());

  CatalogEntryConfig cheap;
  cheap.ordering = "num-alph";
  cheap.histogram_type = HistogramType::kEquiWidth;
  cheap.num_buckets = 4;
  ASSERT_TRUE(catalog.BuildEstimator("cheap", cheap).ok());

  EXPECT_EQ(catalog.EstimatorNames(),
            (std::vector<std::string>{"cheap", "default"}));

  LabelId a = *graph_.labels().Find("a");
  auto estimate = catalog.Estimate("default", LabelPath{a});
  ASSERT_TRUE(estimate.ok());
  EXPECT_GE(*estimate, 0.0);

  auto missing = catalog.Estimate("nope", LabelPath{a});
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, RebuildReplacesEstimator) {
  StatisticsCatalog catalog = MakeCatalog();
  CatalogEntryConfig config;
  config.num_buckets = 4;
  ASSERT_TRUE(catalog.BuildEstimator("e", config).ok());
  config.num_buckets = 16;
  ASSERT_TRUE(catalog.BuildEstimator("e", config).ok());
  auto est = catalog.GetEstimator("e");
  ASSERT_TRUE(est.ok());
  EXPECT_EQ((*est)->histogram().num_buckets(), 16u);
  EXPECT_EQ(catalog.EstimatorNames().size(), 1u);
}

TEST_F(CatalogTest, RejectsPathOutsideSpace) {
  StatisticsCatalog catalog = MakeCatalog(2);
  CatalogEntryConfig config;
  config.num_buckets = 4;
  ASSERT_TRUE(catalog.BuildEstimator("e", config).ok());
  LabelId a = *graph_.labels().Find("a");
  auto too_long = catalog.Estimate("e", LabelPath{a, a, a});
  EXPECT_EQ(too_long.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CatalogTest, SupportsIdealAndCompositeEntries) {
  StatisticsCatalog catalog = MakeCatalog();
  CatalogEntryConfig ideal;
  ideal.ordering = "ideal";
  ideal.num_buckets = 8;
  EXPECT_TRUE(catalog.BuildEstimator("ideal", ideal).ok());
  CatalogEntryConfig composite;
  composite.ordering = "sum-L2";
  composite.num_buckets = 8;
  EXPECT_TRUE(catalog.BuildEstimator("l2", composite).ok());
}

TEST_F(CatalogTest, StalenessTracking) {
  StatisticsCatalog catalog = MakeCatalog();
  EXPECT_DOUBLE_EQ(catalog.Staleness(), 0.0);
  EXPECT_FALSE(catalog.NeedsRefresh());
  // SmallGraph has 6 edges; 1 change = 16.7% staleness.
  catalog.RecordDataChanges(1);
  EXPECT_NEAR(catalog.Staleness(), 1.0 / 6.0, 1e-12);
  EXPECT_TRUE(catalog.NeedsRefresh(0.1));
  EXPECT_FALSE(catalog.NeedsRefresh(0.5));
}

TEST_F(CatalogTest, SaveAllPersistsSerializableEntries) {
  StatisticsCatalog catalog = MakeCatalog();
  CatalogEntryConfig sum;
  sum.ordering = "sum-based";
  sum.num_buckets = 8;
  ASSERT_TRUE(catalog.BuildEstimator("sum", sum).ok());
  CatalogEntryConfig ideal;
  ideal.ordering = "ideal";
  ideal.num_buckets = 8;
  ASSERT_TRUE(catalog.BuildEstimator("ideal", ideal).ok());

  auto dir = std::filesystem::temp_directory_path() / "pathest_catalog_test";
  std::filesystem::create_directories(dir);
  std::vector<std::string> skipped;
  ASSERT_TRUE(catalog.SaveAll(dir.string(), &skipped).ok());
  EXPECT_EQ(skipped, std::vector<std::string>{"ideal"});
  ASSERT_TRUE(std::filesystem::exists(dir / "sum.stats"));

  // The persisted estimator answers identically after reload.
  auto loaded = LoadPathHistogram((dir / "sum.stats").string());
  ASSERT_TRUE(loaded.ok());
  auto original = catalog.GetEstimator("sum");
  ASSERT_TRUE(original.ok());
  PathSpace space(graph_.num_labels(), 3);
  space.ForEach([&](const LabelPath& p) {
    EXPECT_DOUBLE_EQ(loaded->estimator.Estimate(p),
                     (*original)->Estimate(p));
  });
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pathest
