// Tests for the StatisticsCatalog integration layer.

#include <filesystem>

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/serialize.h"
#include "test_util.h"

namespace pathest {
namespace {

using testing_util::SmallGraph;

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : graph_(SmallGraph()) {}

  StatisticsCatalog MakeCatalog(size_t k = 3) {
    auto catalog = StatisticsCatalog::Analyze(graph_, k);
    PATHEST_CHECK(catalog.ok(), "analyze failed");
    return std::move(*catalog);
  }

  Graph graph_;
};

TEST_F(CatalogTest, AnalyzeComputesExactSelectivities) {
  StatisticsCatalog catalog = MakeCatalog();
  LabelId a = *graph_.labels().Find("a");
  EXPECT_EQ(catalog.ExactSelectivity(LabelPath{a}),
            graph_.LabelCardinality(a));
  EXPECT_EQ(catalog.k(), 3u);
}

TEST_F(CatalogTest, BuildAndQueryEstimators) {
  StatisticsCatalog catalog = MakeCatalog();
  CatalogEntryConfig config;
  config.ordering = "sum-based";
  config.num_buckets = 8;
  ASSERT_TRUE(catalog.BuildEstimator("default", config).ok());

  CatalogEntryConfig cheap;
  cheap.ordering = "num-alph";
  cheap.histogram_type = HistogramType::kEquiWidth;
  cheap.num_buckets = 4;
  ASSERT_TRUE(catalog.BuildEstimator("cheap", cheap).ok());

  EXPECT_EQ(catalog.EstimatorNames(),
            (std::vector<std::string>{"cheap", "default"}));

  LabelId a = *graph_.labels().Find("a");
  auto estimate = catalog.Estimate("default", LabelPath{a});
  ASSERT_TRUE(estimate.ok());
  EXPECT_GE(*estimate, 0.0);

  auto missing = catalog.Estimate("nope", LabelPath{a});
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, RebuildReplacesEstimator) {
  StatisticsCatalog catalog = MakeCatalog();
  CatalogEntryConfig config;
  config.num_buckets = 4;
  ASSERT_TRUE(catalog.BuildEstimator("e", config).ok());
  config.num_buckets = 16;
  ASSERT_TRUE(catalog.BuildEstimator("e", config).ok());
  auto est = catalog.GetEstimator("e");
  ASSERT_TRUE(est.ok());
  EXPECT_EQ((*est)->histogram().num_buckets(), 16u);
  EXPECT_EQ(catalog.EstimatorNames().size(), 1u);
}

TEST_F(CatalogTest, RejectsPathOutsideSpace) {
  StatisticsCatalog catalog = MakeCatalog(2);
  CatalogEntryConfig config;
  config.num_buckets = 4;
  ASSERT_TRUE(catalog.BuildEstimator("e", config).ok());
  LabelId a = *graph_.labels().Find("a");
  auto too_long = catalog.Estimate("e", LabelPath{a, a, a});
  EXPECT_EQ(too_long.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CatalogTest, SupportsIdealAndCompositeEntries) {
  StatisticsCatalog catalog = MakeCatalog();
  CatalogEntryConfig ideal;
  ideal.ordering = "ideal";
  ideal.num_buckets = 8;
  EXPECT_TRUE(catalog.BuildEstimator("ideal", ideal).ok());
  CatalogEntryConfig composite;
  composite.ordering = "sum-L2";
  composite.num_buckets = 8;
  EXPECT_TRUE(catalog.BuildEstimator("l2", composite).ok());
}

TEST_F(CatalogTest, StalenessTracking) {
  StatisticsCatalog catalog = MakeCatalog();
  EXPECT_DOUBLE_EQ(catalog.Staleness(), 0.0);
  EXPECT_FALSE(catalog.NeedsRefresh());
  // SmallGraph has 6 edges; 1 change = 16.7% staleness.
  catalog.RecordDataChanges(1);
  EXPECT_NEAR(catalog.Staleness(), 1.0 / 6.0, 1e-12);
  EXPECT_TRUE(catalog.NeedsRefresh(0.1));
  EXPECT_FALSE(catalog.NeedsRefresh(0.5));
}

TEST_F(CatalogTest, SaveAllPersistsSerializableEntries) {
  StatisticsCatalog catalog = MakeCatalog();
  CatalogEntryConfig sum;
  sum.ordering = "sum-based";
  sum.num_buckets = 8;
  ASSERT_TRUE(catalog.BuildEstimator("sum", sum).ok());
  CatalogEntryConfig ideal;
  ideal.ordering = "ideal";
  ideal.num_buckets = 8;
  ASSERT_TRUE(catalog.BuildEstimator("ideal", ideal).ok());

  auto dir = std::filesystem::temp_directory_path() / "pathest_catalog_test";
  std::filesystem::create_directories(dir);
  std::vector<std::string> skipped;
  ASSERT_TRUE(catalog.SaveAll(dir.string(), &skipped).ok());
  EXPECT_EQ(skipped, std::vector<std::string>{"ideal"});
  ASSERT_TRUE(std::filesystem::exists(dir / "sum.stats"));

  // The persisted estimator answers identically after reload.
  auto loaded = LoadPathHistogram((dir / "sum.stats").string());
  ASSERT_TRUE(loaded.ok());
  auto original = catalog.GetEstimator("sum");
  ASSERT_TRUE(original.ok());
  PathSpace space(graph_.num_labels(), 3);
  space.ForEach([&](const LabelPath& p) {
    EXPECT_DOUBLE_EQ(loaded->estimator.Estimate(p),
                     (*original)->Estimate(p));
  });
  std::filesystem::remove_all(dir);
}

TEST_F(CatalogTest, SaveAllBinaryLoadAllRoundTrip) {
  StatisticsCatalog catalog = MakeCatalog();
  CatalogEntryConfig config;
  config.ordering = "sum-based";
  config.num_buckets = 8;
  ASSERT_TRUE(catalog.BuildEstimator("sum", config).ok());
  config.ordering = "lex-card";
  ASSERT_TRUE(catalog.BuildEstimator("lex", config).ok());

  auto dir =
      std::filesystem::temp_directory_path() / "pathest_catalog_bin_test";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(
      catalog.SaveAll(dir.string(), nullptr, CatalogFormat::kBinary).ok());

  StatisticsCatalog fresh = MakeCatalog();
  CatalogLoadReport report;
  ASSERT_TRUE(fresh.LoadAll(dir.string(), &report).ok());
  EXPECT_TRUE(report.fully_healthy());
  EXPECT_EQ(report.loaded, (std::vector<std::string>{"lex", "sum"}));
  PathSpace space(graph_.num_labels(), 3);
  for (const char* name : {"sum", "lex"}) {
    auto original = catalog.GetEstimator(name);
    auto reloaded = fresh.GetEstimator(name);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(reloaded.ok());
    space.ForEach([&](const LabelPath& p) {
      EXPECT_EQ((*reloaded)->Estimate(p), (*original)->Estimate(p)) << name;
    });
  }
  std::filesystem::remove_all(dir);
}

TEST_F(CatalogTest, LoadAllQuarantinesForeignLabelDictionary) {
  // An entry persisted against a DIFFERENT graph parses cleanly but would
  // serve wrong estimates — LoadAll must quarantine it, not register it.
  auto dir =
      std::filesystem::temp_directory_path() / "pathest_catalog_foreign";
  std::filesystem::create_directories(dir);
  Graph foreign = testing_util::GraphWithCardinalities(
      {{"x", 3}, {"y", 5}, {"z", 2}});
  auto foreign_catalog = StatisticsCatalog::Analyze(foreign, 3);
  ASSERT_TRUE(foreign_catalog.ok());
  CatalogEntryConfig config;
  config.ordering = "sum-based";
  config.num_buckets = 4;
  ASSERT_TRUE(foreign_catalog->BuildEstimator("foreign", config).ok());
  ASSERT_TRUE(foreign_catalog->SaveAll(dir.string()).ok());

  StatisticsCatalog catalog = MakeCatalog();
  CatalogLoadReport report;
  ASSERT_TRUE(catalog.LoadAll(dir.string(), &report).ok());
  EXPECT_TRUE(report.loaded.empty());
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].status.message().find("label dictionary"),
            std::string::npos);
  EXPECT_EQ(catalog.EstimatorNames(), std::vector<std::string>{});
  std::filesystem::remove_all(dir);
}

TEST_F(CatalogTest, LoadAllMissingDirIsNotFound) {
  StatisticsCatalog catalog = MakeCatalog();
  CatalogLoadReport report;
  EXPECT_EQ(catalog.LoadAll("/nonexistent/catalog_dir", &report).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace pathest
