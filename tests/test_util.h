// Shared helpers for pathest tests.

#ifndef PATHEST_TESTS_TEST_UTIL_H_
#define PATHEST_TESTS_TEST_UTIL_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/status.h"

namespace pathest {
namespace testing_util {

// Builds a graph whose per-label cardinalities are exactly as requested, by
// laying out disjoint (src, dst) pairs per label. Vertex ids are arbitrary.
inline Graph GraphWithCardinalities(
    const std::vector<std::pair<std::string, uint64_t>>& label_cards) {
  GraphBuilder builder;
  VertexId next = 0;
  for (const auto& [name, card] : label_cards) {
    LabelId l = builder.AddLabel(name);
    for (uint64_t i = 0; i < card; ++i) {
      builder.AddEdge(next, l, next + 1);
      next += 2;
    }
  }
  auto graph = builder.Build();
  PATHEST_CHECK(graph.ok(), "GraphWithCardinalities build failed");
  return std::move(graph).ValueOrDie();
}

// The artificial dataset of the paper's Section 3.4: labels "1", "2", "3"
// with cardinalities 20, 100, 80.
inline Graph PaperExampleGraph() {
  return GraphWithCardinalities({{"1", 20}, {"2", 100}, {"3", 80}});
}

// A small deterministic diamond-ish graph for selectivity tests:
//   0 -a-> 1, 0 -a-> 2, 1 -b-> 3, 2 -b-> 3, 3 -c-> 0, 1 -a-> 3.
inline Graph SmallGraph() {
  GraphBuilder builder;
  builder.AddEdge(0, "a", 1);
  builder.AddEdge(0, "a", 2);
  builder.AddEdge(1, "b", 3);
  builder.AddEdge(2, "b", 3);
  builder.AddEdge(3, "c", 0);
  builder.AddEdge(1, "a", 3);
  auto graph = builder.Build(/*with_reverse=*/true);
  PATHEST_CHECK(graph.ok(), "SmallGraph build failed");
  return std::move(graph).ValueOrDie();
}

}  // namespace testing_util
}  // namespace pathest

#endif  // PATHEST_TESTS_TEST_UTIL_H_
