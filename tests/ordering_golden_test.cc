// Golden tests reproducing the paper's worked example (Section 3.4):
// Table 1 (summed ranks) and Table 2 (the five orderings of L_2 over an
// artificial dataset with label cardinalities 1 -> 20, 2 -> 100, 3 -> 80).
//
// These tables pin down every ordering method exactly, including the two
// spots where the paper's prose and its own tables disagree (lex blank
// ranking, Formula 4's m-1 vs m-i); the tables are authoritative.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ordering/factory.h"
#include "ordering/ranking.h"
#include "ordering/sum_based.h"
#include "path/label_path.h"
#include "test_util.h"

namespace pathest {
namespace {

using testing_util::PaperExampleGraph;

std::vector<std::string> OrderedNames(const Ordering& ordering,
                                      const LabelDictionary& dict) {
  std::vector<std::string> names;
  names.reserve(ordering.size());
  for (uint64_t i = 0; i < ordering.size(); ++i) {
    names.push_back(ordering.Unrank(i).ToString(dict));
  }
  return names;
}

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : graph_(PaperExampleGraph()) {}

  std::vector<std::string> Order(const std::string& method) {
    auto ordering = MakeOrdering(method, graph_, /*k=*/2);
    EXPECT_TRUE(ordering.ok()) << ordering.status().ToString();
    return OrderedNames(**ordering, graph_.labels());
  }

  Graph graph_;
};

TEST_F(PaperExampleTest, Table1SummedRanks) {
  // Cardinality ranks: f(1)=20 -> rank 1, f(3)=80 -> rank 2, f(2)=100 -> 3.
  std::vector<uint64_t> cards = {20, 100, 80};
  LabelRanking ranking = LabelRanking::Cardinality(graph_.labels(), cards);
  auto rank_of_name = [&](const std::string& name) {
    return ranking.RankOf(*graph_.labels().Find(name));
  };
  EXPECT_EQ(rank_of_name("1"), 1u);
  EXPECT_EQ(rank_of_name("2"), 3u);
  EXPECT_EQ(rank_of_name("3"), 2u);

  // Summed ranks from Table 1.
  struct Row {
    std::string path;
    uint64_t summed_rank;
  };
  const std::vector<Row> kTable1 = {
      {"1", 1},   {"2", 3},   {"3", 2},   {"1/1", 2}, {"1/2", 4}, {"1/3", 3},
      {"2/1", 4}, {"2/2", 6}, {"2/3", 5}, {"3/1", 3}, {"3/2", 5}, {"3/3", 4}};
  for (const Row& row : kTable1) {
    auto path = LabelPath::Parse(row.path, graph_.labels());
    ASSERT_TRUE(path.ok());
    uint64_t sum = 0;
    for (size_t i = 0; i < path->length(); ++i) {
      sum += ranking.RankOf(path->label(i));
    }
    EXPECT_EQ(sum, row.summed_rank) << "path " << row.path;
  }
}

TEST_F(PaperExampleTest, Table2NumAlph) {
  EXPECT_EQ(Order("num-alph"),
            (std::vector<std::string>{"1", "2", "3", "1/1", "1/2", "1/3",
                                      "2/1", "2/2", "2/3", "3/1", "3/2",
                                      "3/3"}));
}

TEST_F(PaperExampleTest, Table2NumCard) {
  EXPECT_EQ(Order("num-card"),
            (std::vector<std::string>{"1", "3", "2", "1/1", "1/3", "1/2",
                                      "3/1", "3/3", "3/2", "2/1", "2/3",
                                      "2/2"}));
}

TEST_F(PaperExampleTest, Table2LexAlph) {
  EXPECT_EQ(Order("lex-alph"),
            (std::vector<std::string>{"1", "1/1", "1/2", "1/3", "2", "2/1",
                                      "2/2", "2/3", "3", "3/1", "3/2",
                                      "3/3"}));
}

TEST_F(PaperExampleTest, Table2LexCard) {
  EXPECT_EQ(Order("lex-card"),
            (std::vector<std::string>{"1", "1/1", "1/3", "1/2", "3", "3/1",
                                      "3/3", "3/2", "2", "2/1", "2/3",
                                      "2/2"}));
}

TEST_F(PaperExampleTest, Table2SumBased) {
  EXPECT_EQ(Order("sum-based"),
            (std::vector<std::string>{"1", "3", "2", "1/1", "1/3", "3/1",
                                      "3/3", "1/2", "2/1", "3/2", "2/3",
                                      "2/2"}));
}

TEST_F(PaperExampleTest, AllMethodsAreBijections) {
  for (const std::string& method : PaperOrderingNames()) {
    auto ordering = MakeOrdering(method, graph_, 2);
    ASSERT_TRUE(ordering.ok());
    for (uint64_t i = 0; i < (*ordering)->size(); ++i) {
      LabelPath p = (*ordering)->Unrank(i);
      EXPECT_EQ((*ordering)->Rank(p), i) << method << " index " << i;
    }
  }
}

// Figure 1 cross-check: the paper's running Moreno example uses k = 3 and
// reports 258 label paths on 6 labels; |L_3| = 6 + 36 + 216 = 258.
TEST(PathSpaceSizeTest, MorenoK3Has258Paths) {
  PathSpace space(6, 3);
  EXPECT_EQ(space.size(), 258u);
}

// Table 4 cross-check: the paper reports 55996 "total label paths" for
// Moreno at k = 6; the exact value of |L_6| over 6 labels is 55986 (the
// paper's figure includes a typo). Our implementation is exact.
TEST(PathSpaceSizeTest, MorenoK6Has55986Paths) {
  PathSpace space(6, 6);
  EXPECT_EQ(space.size(), 55986u);
}

}  // namespace
}  // namespace pathest
