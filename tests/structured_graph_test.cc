// Closed-form selectivity laws on structured graphs. Unlike the
// brute-force cross-checks in selectivity_test.cc, these pin the evaluator
// against EXACT combinatorial formulas derived by hand, so a systematic
// bias in both implementations cannot hide.

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "histogram/builders.h"
#include "path/selectivity.h"

namespace pathest {
namespace {

Graph Build(GraphBuilder* builder) {
  auto g = builder->Build();
  PATHEST_CHECK(g.ok(), "build failed");
  return std::move(*g);
}

// Directed n-cycle, single label: every vertex reaches exactly one vertex
// in j hops, so f(a^j) = n for every j >= 1.
TEST(StructuredGraphTest, CycleHasConstantSelectivity) {
  for (size_t n : {3u, 5u, 12u}) {
    GraphBuilder builder;
    for (VertexId v = 0; v < n; ++v) {
      builder.AddEdge(v, "a", static_cast<VertexId>((v + 1) % n));
    }
    Graph g = Build(&builder);
    auto map = ComputeSelectivities(g, 6);
    ASSERT_TRUE(map.ok());
    LabelPath path;
    for (size_t j = 1; j <= 6; ++j) {
      path.PushBack(0);
      EXPECT_EQ(map->Get(path), n) << "n=" << n << " j=" << j;
    }
  }
}

// Directed chain 0 -> 1 -> ... -> n-1, single label: f(a^j) = n - j
// (0 when j >= n).
TEST(StructuredGraphTest, ChainShrinksLinearly) {
  const size_t n = 9;
  GraphBuilder builder;
  for (VertexId v = 0; v + 1 < n; ++v) builder.AddEdge(v, "a", v + 1);
  Graph g = Build(&builder);
  auto map = ComputeSelectivities(g, 12);
  ASSERT_TRUE(map.ok());
  LabelPath path;
  for (size_t j = 1; j <= 12; ++j) {
    path.PushBack(0);
    EXPECT_EQ(map->Get(path), j < n ? n - j : 0) << "j=" << j;
  }
}

// Star with L leaves: center -a-> leaf_i, leaf_i -b-> center.
//   f(a) = L, f(b) = L,
//   f(a/b) = 1  (center back to center, one distinct pair),
//   f(b/a) = L^2 (every leaf to every leaf),
//   f(a/a) = f(b/b) = 0.
TEST(StructuredGraphTest, StarHasQuadraticBounce) {
  const uint64_t leaves = 7;
  GraphBuilder builder;
  for (VertexId i = 1; i <= leaves; ++i) {
    builder.AddEdge(0, "a", i);
    builder.AddEdge(i, "b", 0);
  }
  Graph g = Build(&builder);
  auto map = ComputeSelectivities(g, 4);
  ASSERT_TRUE(map.ok());
  LabelId a = *g.labels().Find("a");
  LabelId b = *g.labels().Find("b");
  EXPECT_EQ(map->Get(LabelPath{a}), leaves);
  EXPECT_EQ(map->Get(LabelPath{b}), leaves);
  EXPECT_EQ(map->Get((LabelPath{a, b})), 1u);
  EXPECT_EQ(map->Get((LabelPath{b, a})), leaves * leaves);
  EXPECT_EQ(map->Get((LabelPath{a, a})), 0u);
  EXPECT_EQ(map->Get((LabelPath{b, b})), 0u);
  // Longer bounces: a/b/a ends on every leaf from the center (L distinct
  // pairs); b/a/b ends on the center from every leaf (also L).
  EXPECT_EQ(map->Get((LabelPath{a, b, a})), leaves);
  EXPECT_EQ(map->Get((LabelPath{b, a, b})), leaves);
}

// Complete digraph (no self loops), single label, n >= 3:
//   f(a) = n(n-1); f(a^j) = n^2 for j >= 2 (two hops reach everything,
//   including returning to the start through a third vertex).
TEST(StructuredGraphTest, CompleteDigraphSaturates) {
  const uint64_t n = 6;
  GraphBuilder builder;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = 0; j < n; ++j) {
      if (i != j) builder.AddEdge(i, "a", j);
    }
  }
  Graph g = Build(&builder);
  auto map = ComputeSelectivities(g, 4);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->Get(LabelPath{0}), n * (n - 1));
  LabelPath path{0};
  for (size_t j = 2; j <= 4; ++j) {
    path.PushBack(0);
    EXPECT_EQ(map->Get(path), n * n) << "j=" << j;
  }
}

// Two disjoint components never mix: selectivities are additive across a
// disjoint union of graphs.
TEST(StructuredGraphTest, DisjointUnionIsAdditive) {
  // Component A: 4-cycle labeled a. Component B: 3-chain labeled a.
  GraphBuilder builder;
  for (VertexId v = 0; v < 4; ++v) {
    builder.AddEdge(v, "a", static_cast<VertexId>((v + 1) % 4));
  }
  builder.AddEdge(10, "a", 11);
  builder.AddEdge(11, "a", 12);
  Graph g = Build(&builder);
  auto map = ComputeSelectivities(g, 3);
  ASSERT_TRUE(map.ok());
  // f(a)   = 4 (cycle) + 2 (chain)
  // f(a^2) = 4 + 1
  // f(a^3) = 4 + 0
  EXPECT_EQ(map->Get(LabelPath{0}), 6u);
  EXPECT_EQ(map->Get((LabelPath{0, 0})), 5u);
  EXPECT_EQ(map->Get((LabelPath{0, 0, 0})), 4u);
}

// A lattice where multiple routes connect the same pair must count the
// pair once: diamond 0 -> {1,2} -> 3 (all label a).
TEST(StructuredGraphTest, DistinctPairsNotPathCount) {
  GraphBuilder builder;
  builder.AddEdge(0, "a", 1);
  builder.AddEdge(0, "a", 2);
  builder.AddEdge(1, "a", 3);
  builder.AddEdge(2, "a", 3);
  Graph g = Build(&builder);
  auto map = ComputeSelectivities(g, 2);
  ASSERT_TRUE(map.ok());
  // Two concrete paths 0->1->3 and 0->2->3, but one distinct pair (0,3).
  EXPECT_EQ(map->Get((LabelPath{0, 0})), 1u);
}

// Histogram over a constant distribution is exact with ONE bucket — ties
// the evaluator to the estimator on a case with a provable answer.
TEST(StructuredGraphTest, CycleDistributionNeedsOneBucket) {
  GraphBuilder builder;
  for (VertexId v = 0; v < 8; ++v) {
    builder.AddEdge(v, "a", static_cast<VertexId>((v + 1) % 8));
  }
  Graph g = Build(&builder);
  auto map = ComputeSelectivities(g, 5);
  ASSERT_TRUE(map.ok());
  // All five paths a, a/a, ..., a^5 have f = 8: one bucket, zero SSE.
  auto h = BuildVOptimalGreedy(map->values(), 1);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->TotalSse(), 0.0);
  EXPECT_DOUBLE_EQ(h->Estimate(0), 8.0);
}

}  // namespace
}  // namespace pathest
