// Tests for estimator persistence (core/serialize.h): format round-trips,
// estimate preservation, and corruption handling.

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include <gtest/gtest.h>

#include "core/serialize.h"
#include "ordering/factory.h"
#include "path/selectivity.h"
#include "test_util.h"
#include "util/combinatorics.h"

namespace pathest {
namespace {

using testing_util::SmallGraph;

class SerializeTest : public ::testing::Test {
 protected:
  SerializeTest() : graph_(SmallGraph()) {
    auto map = ComputeSelectivities(graph_, 3);
    PATHEST_CHECK(map.ok(), "selectivities failed");
    map_ = std::make_unique<SelectivityMap>(std::move(*map));
  }

  PathHistogram BuildEstimator(const std::string& method, size_t beta) {
    auto ordering = MakeOrdering(method, graph_, 3);
    PATHEST_CHECK(ordering.ok(), "ordering failed");
    auto est = PathHistogram::Build(*map_, std::move(*ordering),
                                    HistogramType::kVOptimal, beta);
    PATHEST_CHECK(est.ok(), "estimator failed");
    return std::move(*est);
  }

  std::string Serialized(const PathHistogram& est) {
    std::vector<uint64_t> cards;
    for (LabelId l = 0; l < graph_.num_labels(); ++l) {
      cards.push_back(graph_.LabelCardinality(l));
    }
    std::ostringstream out;
    PATHEST_CHECK(
        WritePathHistogram(est, graph_.labels(), cards, &out).ok(),
        "write failed");
    return out.str();
  }

  Graph graph_;
  std::unique_ptr<SelectivityMap> map_;
};

TEST_F(SerializeTest, SerializableOrderingPredicate) {
  for (const char* ok :
       {"num-alph", "num-card", "lex-alph", "lex-card", "sum-based",
        "gray-card"}) {
    EXPECT_TRUE(IsSerializableOrdering(ok)) << ok;
  }
  for (const char* bad : {"ideal", "random", "sum-L2", "bogus"}) {
    EXPECT_FALSE(IsSerializableOrdering(bad)) << bad;
  }
}

TEST_F(SerializeTest, RoundTripPreservesEveryEstimate) {
  for (const std::string& method : PaperOrderingNames()) {
    PathHistogram original = BuildEstimator(method, 8);
    std::istringstream in(Serialized(original));
    auto loaded = ReadPathHistogram(&in);
    ASSERT_TRUE(loaded.ok()) << method << ": "
                             << loaded.status().ToString();
    EXPECT_EQ(loaded->estimator.ordering().name(), method);
    EXPECT_EQ(loaded->estimator.histogram().num_buckets(), 8u);
    PathSpace space(graph_.num_labels(), 3);
    space.ForEach([&](const LabelPath& p) {
      // Re-parse the path against the loaded dictionary in case label ids
      // were re-assigned (they are written in id order, so they are not).
      EXPECT_DOUBLE_EQ(loaded->estimator.Estimate(p), original.Estimate(p))
          << method << " " << p.ToIdString();
    });
  }
}

TEST_F(SerializeTest, RoundTripPreservesBucketsExactly) {
  PathHistogram original = BuildEstimator("sum-based", 6);
  std::istringstream in(Serialized(original));
  auto loaded = ReadPathHistogram(&in);
  ASSERT_TRUE(loaded.ok());
  const auto& a = original.histogram().buckets();
  const auto& b = loaded->estimator.histogram().buckets();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_DOUBLE_EQ(a[i].sum, b[i].sum);      // hexfloat: bit-exact
    EXPECT_DOUBLE_EQ(a[i].sumsq, b[i].sumsq);
  }
  EXPECT_EQ(loaded->estimator.histogram_type(), HistogramType::kVOptimal);
}

TEST_F(SerializeTest, FileRoundTrip) {
  PathHistogram original = BuildEstimator("lex-card", 4);
  std::string path = (std::filesystem::temp_directory_path() /
                      "pathest_serialize_test.stats")
                         .string();
  ASSERT_TRUE(SavePathHistogram(original, graph_, path).ok());
  auto loaded = LoadPathHistogram(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->estimator.ordering().name(), "lex-card");
  std::filesystem::remove(path);
}

TEST_F(SerializeTest, RefusesMaterializedOrderings) {
  auto ideal = MakeOrderingWithSelectivities("ideal", graph_, 3, *map_);
  ASSERT_TRUE(ideal.ok());
  auto est = PathHistogram::Build(*map_, std::move(*ideal),
                                  HistogramType::kVOptimal, 4);
  ASSERT_TRUE(est.ok());
  std::vector<uint64_t> cards(graph_.num_labels(), 1);
  std::ostringstream out;
  Status st = WritePathHistogram(*est, graph_.labels(), cards, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializeTest, RejectsBadMagic) {
  std::istringstream in("not a histogram file\n");
  EXPECT_EQ(ReadPathHistogram(&in).status().code(), StatusCode::kIOError);
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  std::string full = Serialized(BuildEstimator("num-card", 4));
  // Drop the last two lines.
  std::string truncated = full.substr(0, full.rfind('\n', full.size() - 2));
  truncated = truncated.substr(0, truncated.rfind('\n'));
  std::istringstream in(truncated);
  EXPECT_FALSE(ReadPathHistogram(&in).ok());
}

TEST_F(SerializeTest, RejectsCorruptedBuckets) {
  std::string full = Serialized(BuildEstimator("num-card", 4));
  // Corrupt a bucket boundary to break contiguity.
  size_t pos = full.find("buckets 4\n");
  ASSERT_NE(pos, std::string::npos);
  size_t line_start = pos + std::string("buckets 4\n").size();
  size_t line_end = full.find('\n', line_start);
  full.replace(line_start, line_end - line_start, "5 7 0x1p+3 0x1p+6");
  std::istringstream in(full);
  EXPECT_FALSE(ReadPathHistogram(&in).ok());
}

TEST_F(SerializeTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadPathHistogram("/nonexistent/x.stats").status().code(),
            StatusCode::kIOError);
}

TEST_F(SerializeTest, ForgedHugeCountsInTextHeaderAreErrorsNotAllocations) {
  // Regression for the unbounded reserve: a forged count far beyond what
  // the remaining bytes could hold must fail up front, not allocate.
  const std::string full = Serialized(BuildEstimator("num-card", 4));
  for (const char* key : {"labels", "buckets"}) {
    const std::string needle = std::string(key) + " ";
    const size_t pos = full.find(needle);
    ASSERT_NE(pos, std::string::npos);
    const size_t num_start = pos + needle.size();
    const size_t num_end = full.find_first_of(" \n", num_start);
    std::string forged = full;
    forged.replace(num_start, num_end - num_start, "987654321098765");
    std::istringstream in(forged);
    auto loaded = ReadPathHistogram(&in);
    ASSERT_FALSE(loaded.ok()) << key;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  }
  // An in-cap-range but still impossible count reaches the plausibility
  // gate itself (bucket counts have no fixed cap, only the gate).
  {
    const size_t pos = full.find("buckets ");
    ASSERT_NE(pos, std::string::npos);
    const size_t num_start = pos + 8;
    const size_t num_end = full.find_first_of(" \n", num_start);
    std::string forged = full;
    forged.replace(num_start, num_end - num_start, "123456789");
    std::istringstream in(forged);
    auto loaded = ReadPathHistogram(&in);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("implausible"),
              std::string::npos)
        << loaded.status().ToString();
  }
}

// Binary round-trips across the full serializable surface: every factory
// ordering, every analyzed path length. The chain is the interchange
// story end to end — build, save TEXT, load, save BINARY, load — and the
// final estimator must be bit-identical to the original over the whole
// domain.
class BinaryRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {};

TEST_P(BinaryRoundTripTest, TextThenBinaryPreservesEveryEstimateBitExact) {
  const auto& [method, k] = GetParam();
  Graph graph = SmallGraph();
  auto map = ComputeSelectivities(graph, k);
  ASSERT_TRUE(map.ok());
  auto ordering = MakeOrdering(method, graph, k);
  ASSERT_TRUE(ordering.ok());
  auto original = PathHistogram::Build(*map, std::move(*ordering),
                                       HistogramType::kVOptimal, 5);
  ASSERT_TRUE(original.ok());

  std::vector<uint64_t> cards;
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    cards.push_back(graph.LabelCardinality(l));
  }
  // text → load
  std::ostringstream text;
  ASSERT_TRUE(
      WritePathHistogram(*original, graph.labels(), cards, &text).ok());
  std::istringstream in(text.str());
  auto from_text = ReadPathHistogram(&in);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  // → binary → load
  std::string binary;
  ASSERT_TRUE(WritePathHistogramBinary(from_text->estimator,
                                       from_text->labels,
                                       from_text->label_cardinalities,
                                       &binary)
                  .ok());
  ASSERT_TRUE(LooksLikeBinaryCatalog(binary));
  auto from_binary = ReadPathHistogramBinary(binary);
  ASSERT_TRUE(from_binary.ok()) << method << " k=" << k << ": "
                                << from_binary.status().ToString();

  // "sum-card" is an alias: SumBasedOrdering canonicalizes the paper's
  // sum+cardinality combination to "sum-based" at construction, so that
  // is the name that persists.
  const std::string canonical = method == "sum-card" ? "sum-based" : method;
  EXPECT_EQ(from_binary->estimator.ordering().name(), canonical);
  EXPECT_EQ(from_binary->labels.names(), graph.labels().names());
  EXPECT_EQ(from_binary->label_cardinalities, cards);
  PathSpace space(graph.num_labels(), k);
  space.ForEach([&](const LabelPath& p) {
    // Bit-identical, not approximately equal: the binary format stores
    // doubles as IEEE-754 bit patterns.
    EXPECT_EQ(from_binary->estimator.Estimate(p), original->Estimate(p))
        << method << " k=" << k << " " << p.ToIdString();
  });
}

TEST_P(BinaryRoundTripTest, V2RoundTripPreservesEveryEstimateBitExact) {
  const auto& [method, k] = GetParam();
  Graph graph = SmallGraph();
  auto map = ComputeSelectivities(graph, k);
  ASSERT_TRUE(map.ok());
  auto ordering = MakeOrdering(method, graph, k);
  ASSERT_TRUE(ordering.ok());
  auto original = PathHistogram::Build(*map, std::move(*ordering),
                                       HistogramType::kVOptimal, 5);
  ASSERT_TRUE(original.ok());
  std::vector<uint64_t> cards;
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    cards.push_back(graph.LabelCardinality(l));
  }

  std::string v2;
  ASSERT_TRUE(WritePathHistogramBinaryV2(*original, graph.labels(), cards,
                                         &v2)
                  .ok());
  ASSERT_TRUE(BytesAreBinaryV2(v2));
  ASSERT_TRUE(LooksLikeBinaryCatalog(v2));
  // The full-verify copying reader (also what the format-sniffing
  // dispatchers route v2 bytes to).
  auto loaded = ReadPathHistogramBinaryV2(v2);
  ASSERT_TRUE(loaded.ok()) << method << " k=" << k << ": "
                           << loaded.status().ToString();
  const std::string canonical = method == "sum-card" ? "sum-based" : method;
  EXPECT_EQ(loaded->estimator.ordering().name(), canonical);
  EXPECT_EQ(loaded->labels.names(), graph.labels().names());
  EXPECT_EQ(loaded->label_cardinalities, cards);
  PathSpace space(graph.num_labels(), k);
  space.ForEach([&](const LabelPath& p) {
    EXPECT_EQ(loaded->estimator.Estimate(p), original->Estimate(p))
        << method << " k=" << k << " " << p.ToIdString();
  });

  // Writing the same estimator twice must produce identical bytes — the
  // golden test, the fault suite, and convert idempotence all rest on
  // deterministic serialization.
  std::string again;
  ASSERT_TRUE(WritePathHistogramBinaryV2(*original, graph.labels(), cards,
                                         &again)
                  .ok());
  EXPECT_EQ(v2, again);
}

TEST_P(BinaryRoundTripTest, V2SectionsArePageAlignedWithExactLayouts) {
  const auto& [method, k] = GetParam();
  Graph graph = SmallGraph();
  auto map = ComputeSelectivities(graph, k);
  ASSERT_TRUE(map.ok());
  auto ordering = MakeOrdering(method, graph, k);
  ASSERT_TRUE(ordering.ok());
  auto est = PathHistogram::Build(*map, std::move(*ordering),
                                  HistogramType::kVOptimal, 5);
  ASSERT_TRUE(est.ok());
  std::vector<uint64_t> cards;
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    cards.push_back(graph.LabelCardinality(l));
  }
  std::string v2;
  ASSERT_TRUE(
      WritePathHistogramBinaryV2(*est, graph.labels(), cards, &v2).ok());

  // Walk the section table by hand against the layout helpers — the same
  // helpers the readers use, so this pins writer/reader agreement AND the
  // alignment contract `catalog verify` reports as aligned=yes.
  const auto* bytes = reinterpret_cast<const unsigned char*>(v2.data());
  uint32_t section_count;
  std::memcpy(&section_count, bytes + 12, 4);
  const bool sum_family = method.rfind("sum", 0) == 0;
  ASSERT_EQ(section_count, sum_family ? 6u : 4u);
  uint64_t file_size;
  std::memcpy(&file_size, bytes + 16, 8);
  EXPECT_EQ(file_size, v2.size());

  const uint64_t beta = est->histogram().num_buckets();
  for (uint32_t i = 0; i < section_count; ++i) {
    const size_t at = binfmt::kHeaderBytes + i * binfmt::kSectionEntryBytes;
    uint32_t id;
    uint64_t offset, length;
    std::memcpy(&id, bytes + at, 4);
    std::memcpy(&offset, bytes + at + 8, 8);
    std::memcpy(&length, bytes + at + 16, 8);
    EXPECT_EQ(offset % binfmt::kPageBytes, 0u) << "section " << id;
    if (id == binfmt::kSectionHistogram) {
      EXPECT_EQ(length, binfmt::HistogramLayout(beta).payload_bytes);
    } else if (id == binfmt::kSectionComposition) {
      EXPECT_EQ(length,
                binfmt::CompositionLayout(
                    CompositionTable::FlatCountValues(graph.num_labels(), k),
                    k)
                    .payload_bytes);
    }
  }
  // Trailing padding never exceeds a page (the writer pads each section
  // start, not the file end — the last section ends the file exactly).
  uint64_t last_offset, last_length;
  const size_t last = binfmt::kHeaderBytes +
                      (section_count - 1) * binfmt::kSectionEntryBytes;
  std::memcpy(&last_offset, bytes + last + 8, 8);
  std::memcpy(&last_length, bytes + last + 16, 8);
  EXPECT_EQ(last_offset + last_length, v2.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllOrderingsAllK, BinaryRoundTripTest,
    ::testing::Combine(
        ::testing::Values("num-alph", "num-card", "lex-alph", "lex-card",
                          "sum-based", "sum-card", "sum-alph", "gray-alph",
                          "gray-card"),
        ::testing::Values(size_t{2}, size_t{3}, size_t{4})),
    [](const ::testing::TestParamInfo<std::tuple<std::string, size_t>>&
           info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_k" + std::to_string(std::get<1>(info.param));
    });

// The committed golden file pins binary catalog v1: if an edit to the
// writer changes a single byte of the layout, this test fails — version
// bumps must be deliberate (new kVersion), never accidental drift.
//
// Regenerate deliberately with: PATHEST_REGEN_GOLDEN=1 ./serialize_test
TEST(GoldenBinaryCatalog, V1LayoutIsPinned) {
  const std::string path =
      std::string(PATHEST_SOURCE_DIR) + "/tests/golden/catalog_v1.stats";
  // The golden is deterministic: SmallGraph, sum-based, k=3, beta=6 (the
  // build and both serializers are bit-reproducible).
  Graph graph = SmallGraph();
  auto map = ComputeSelectivities(graph, 3);
  ASSERT_TRUE(map.ok());
  auto ordering = MakeOrdering("sum-based", graph, 3);
  ASSERT_TRUE(ordering.ok());
  auto est = PathHistogram::Build(*map, std::move(*ordering),
                                  HistogramType::kVOptimal, 6);
  ASSERT_TRUE(est.ok());
  std::vector<uint64_t> cards;
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    cards.push_back(graph.LabelCardinality(l));
  }
  std::string current;
  ASSERT_TRUE(
      WritePathHistogramBinary(*est, graph.labels(), cards, &current).ok());

  if (std::getenv("PATHEST_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << path;
    out.write(current.data(), static_cast<std::streamsize>(current.size()));
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << path << " missing — run with PATHEST_REGEN_GOLDEN=1 to create";
  std::string golden((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  // Byte-identical both ways: today's writer reproduces the golden, and
  // the golden still loads to a working estimator.
  EXPECT_EQ(current, golden) << "binary catalog layout drifted from v1 — "
                                "if intentional, bump binfmt::kVersion";
  auto loaded = ReadPathHistogramBinary(golden);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  PathSpace space(graph.num_labels(), 3);
  space.ForEach([&](const LabelPath& p) {
    EXPECT_EQ(loaded->estimator.Estimate(p), est->Estimate(p));
  });
}

// Same pin for v2 — its layout additionally carries the serving rows and
// the stage-3 index, so drift here silently breaks mapped catalogs.
TEST(GoldenBinaryCatalog, V2LayoutIsPinned) {
  const std::string path =
      std::string(PATHEST_SOURCE_DIR) + "/tests/golden/catalog_v2.stats";
  Graph graph = SmallGraph();
  auto map = ComputeSelectivities(graph, 3);
  ASSERT_TRUE(map.ok());
  auto ordering = MakeOrdering("sum-based", graph, 3);
  ASSERT_TRUE(ordering.ok());
  auto est = PathHistogram::Build(*map, std::move(*ordering),
                                  HistogramType::kVOptimal, 6);
  ASSERT_TRUE(est.ok());
  std::vector<uint64_t> cards;
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    cards.push_back(graph.LabelCardinality(l));
  }
  std::string current;
  ASSERT_TRUE(
      WritePathHistogramBinaryV2(*est, graph.labels(), cards, &current)
          .ok());

  if (std::getenv("PATHEST_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << path;
    out.write(current.data(), static_cast<std::streamsize>(current.size()));
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << path << " missing — run with PATHEST_REGEN_GOLDEN=1 to create";
  std::string golden((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  EXPECT_EQ(current, golden) << "binary catalog layout drifted from v2 — "
                                "if intentional, bump binfmt::kVersionV2";
  auto loaded = ReadPathHistogramBinaryV2(golden);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  PathSpace space(graph.num_labels(), 3);
  space.ForEach([&](const LabelPath& p) {
    EXPECT_EQ(loaded->estimator.Estimate(p), est->Estimate(p));
  });
}

TEST(SniffBinaryV2, DistinguishesFormatsWithoutSlurping) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "pathest_sniff_test";
  fs::create_directories(dir);
  Graph graph = SmallGraph();
  auto map = ComputeSelectivities(graph, 2);
  ASSERT_TRUE(map.ok());
  auto ordering = MakeOrdering("sum-based", graph, 2);
  ASSERT_TRUE(ordering.ok());
  auto est = PathHistogram::Build(*map, std::move(*ordering),
                                  HistogramType::kVOptimal, 4);
  ASSERT_TRUE(est.ok());

  const std::string text = (dir / "a.stats").string();
  const std::string v1 = (dir / "b.stats").string();
  const std::string v2 = (dir / "c.stats").string();
  ASSERT_TRUE(
      SavePathHistogram(*est, graph, text, CatalogFormat::kText).ok());
  ASSERT_TRUE(
      SavePathHistogram(*est, graph, v1, CatalogFormat::kBinary).ok());
  ASSERT_TRUE(
      SavePathHistogram(*est, graph, v2, CatalogFormat::kBinaryV2).ok());
  auto sniff = [](const std::string& p) {
    auto r = SniffFileIsBinaryV2(p);
    PATHEST_CHECK(r.ok(), "sniff failed");
    return *r;
  };
  EXPECT_FALSE(sniff(text));
  EXPECT_FALSE(sniff(v1));
  EXPECT_TRUE(sniff(v2));
  // Short file: not an error, just not v2.
  const std::string stub = (dir / "short").string();
  { std::ofstream(stub) << "ab"; }
  EXPECT_FALSE(sniff(stub));
  EXPECT_EQ(SniffFileIsBinaryV2((dir / "missing").string()).status().code(),
            StatusCode::kNotFound);
  // Every format loads through the sniffing dispatcher.
  for (const std::string& p : {text, v1, v2}) {
    auto loaded = LoadPathHistogram(p);
    ASSERT_TRUE(loaded.ok()) << p << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded->estimator.ordering().name(), "sum-based");
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pathest
