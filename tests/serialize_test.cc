// Tests for estimator persistence (core/serialize.h): format round-trips,
// estimate preservation, and corruption handling.

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "core/serialize.h"
#include "ordering/factory.h"
#include "path/selectivity.h"
#include "test_util.h"

namespace pathest {
namespace {

using testing_util::SmallGraph;

class SerializeTest : public ::testing::Test {
 protected:
  SerializeTest() : graph_(SmallGraph()) {
    auto map = ComputeSelectivities(graph_, 3);
    PATHEST_CHECK(map.ok(), "selectivities failed");
    map_ = std::make_unique<SelectivityMap>(std::move(*map));
  }

  PathHistogram BuildEstimator(const std::string& method, size_t beta) {
    auto ordering = MakeOrdering(method, graph_, 3);
    PATHEST_CHECK(ordering.ok(), "ordering failed");
    auto est = PathHistogram::Build(*map_, std::move(*ordering),
                                    HistogramType::kVOptimal, beta);
    PATHEST_CHECK(est.ok(), "estimator failed");
    return std::move(*est);
  }

  std::string Serialized(const PathHistogram& est) {
    std::vector<uint64_t> cards;
    for (LabelId l = 0; l < graph_.num_labels(); ++l) {
      cards.push_back(graph_.LabelCardinality(l));
    }
    std::ostringstream out;
    PATHEST_CHECK(
        WritePathHistogram(est, graph_.labels(), cards, &out).ok(),
        "write failed");
    return out.str();
  }

  Graph graph_;
  std::unique_ptr<SelectivityMap> map_;
};

TEST_F(SerializeTest, SerializableOrderingPredicate) {
  for (const char* ok :
       {"num-alph", "num-card", "lex-alph", "lex-card", "sum-based",
        "gray-card"}) {
    EXPECT_TRUE(IsSerializableOrdering(ok)) << ok;
  }
  for (const char* bad : {"ideal", "random", "sum-L2", "bogus"}) {
    EXPECT_FALSE(IsSerializableOrdering(bad)) << bad;
  }
}

TEST_F(SerializeTest, RoundTripPreservesEveryEstimate) {
  for (const std::string& method : PaperOrderingNames()) {
    PathHistogram original = BuildEstimator(method, 8);
    std::istringstream in(Serialized(original));
    auto loaded = ReadPathHistogram(&in);
    ASSERT_TRUE(loaded.ok()) << method << ": "
                             << loaded.status().ToString();
    EXPECT_EQ(loaded->estimator.ordering().name(), method);
    EXPECT_EQ(loaded->estimator.histogram().num_buckets(), 8u);
    PathSpace space(graph_.num_labels(), 3);
    space.ForEach([&](const LabelPath& p) {
      // Re-parse the path against the loaded dictionary in case label ids
      // were re-assigned (they are written in id order, so they are not).
      EXPECT_DOUBLE_EQ(loaded->estimator.Estimate(p), original.Estimate(p))
          << method << " " << p.ToIdString();
    });
  }
}

TEST_F(SerializeTest, RoundTripPreservesBucketsExactly) {
  PathHistogram original = BuildEstimator("sum-based", 6);
  std::istringstream in(Serialized(original));
  auto loaded = ReadPathHistogram(&in);
  ASSERT_TRUE(loaded.ok());
  const auto& a = original.histogram().buckets();
  const auto& b = loaded->estimator.histogram().buckets();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_DOUBLE_EQ(a[i].sum, b[i].sum);      // hexfloat: bit-exact
    EXPECT_DOUBLE_EQ(a[i].sumsq, b[i].sumsq);
  }
  EXPECT_EQ(loaded->estimator.histogram_type(), HistogramType::kVOptimal);
}

TEST_F(SerializeTest, FileRoundTrip) {
  PathHistogram original = BuildEstimator("lex-card", 4);
  std::string path = (std::filesystem::temp_directory_path() /
                      "pathest_serialize_test.stats")
                         .string();
  ASSERT_TRUE(SavePathHistogram(original, graph_, path).ok());
  auto loaded = LoadPathHistogram(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->estimator.ordering().name(), "lex-card");
  std::filesystem::remove(path);
}

TEST_F(SerializeTest, RefusesMaterializedOrderings) {
  auto ideal = MakeOrderingWithSelectivities("ideal", graph_, 3, *map_);
  ASSERT_TRUE(ideal.ok());
  auto est = PathHistogram::Build(*map_, std::move(*ideal),
                                  HistogramType::kVOptimal, 4);
  ASSERT_TRUE(est.ok());
  std::vector<uint64_t> cards(graph_.num_labels(), 1);
  std::ostringstream out;
  Status st = WritePathHistogram(*est, graph_.labels(), cards, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializeTest, RejectsBadMagic) {
  std::istringstream in("not a histogram file\n");
  EXPECT_EQ(ReadPathHistogram(&in).status().code(), StatusCode::kIOError);
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  std::string full = Serialized(BuildEstimator("num-card", 4));
  // Drop the last two lines.
  std::string truncated = full.substr(0, full.rfind('\n', full.size() - 2));
  truncated = truncated.substr(0, truncated.rfind('\n'));
  std::istringstream in(truncated);
  EXPECT_FALSE(ReadPathHistogram(&in).ok());
}

TEST_F(SerializeTest, RejectsCorruptedBuckets) {
  std::string full = Serialized(BuildEstimator("num-card", 4));
  // Corrupt a bucket boundary to break contiguity.
  size_t pos = full.find("buckets 4\n");
  ASSERT_NE(pos, std::string::npos);
  size_t line_start = pos + std::string("buckets 4\n").size();
  size_t line_end = full.find('\n', line_start);
  full.replace(line_start, line_end - line_start, "5 7 0x1p+3 0x1p+6");
  std::istringstream in(full);
  EXPECT_FALSE(ReadPathHistogram(&in).ok());
}

TEST_F(SerializeTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadPathHistogram("/nonexistent/x.stats").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace pathest
