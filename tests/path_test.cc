// Unit tests for LabelPath, PathSpace, and the greedy splitter.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "path/label_path.h"
#include "path/path_space.h"
#include "path/splitter.h"
#include "test_util.h"

namespace pathest {
namespace {

TEST(LabelPathTest, BasicAccessors) {
  LabelPath p{2, 0, 1};
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.label(0), 2u);
  EXPECT_EQ(p.label(2), 1u);
  EXPECT_FALSE(p.empty());
  EXPECT_TRUE(LabelPath{}.empty());
}

TEST(LabelPathTest, ExtendAndPrefixSuffix) {
  LabelPath p{1, 2};
  LabelPath q = p.Extend(3);
  EXPECT_EQ(q.length(), 3u);
  EXPECT_EQ(p.length(), 2u);  // Extend does not mutate
  EXPECT_EQ(q.Prefix(2), p);
  EXPECT_EQ(q.Suffix(1), (LabelPath{2, 3}));
  EXPECT_EQ(q.Suffix(3), LabelPath{});
}

TEST(LabelPathTest, PushPopRoundTrip) {
  LabelPath p;
  p.PushBack(5);
  p.PushBack(6);
  EXPECT_EQ(p, (LabelPath{5, 6}));
  p.PopBack();
  EXPECT_EQ(p, LabelPath{5});
}

TEST(LabelPathTest, CanonicalComparisonIsLengthMajor) {
  EXPECT_LT(LabelPath{9}, (LabelPath{0, 0}));
  EXPECT_LT((LabelPath{0, 1}), (LabelPath{0, 2}));
  EXPECT_LT((LabelPath{0, 9}), (LabelPath{1, 0}));
  EXPECT_FALSE(LabelPath{1} < LabelPath{1});
}

TEST(LabelPathTest, HashDistinguishesLengthAndContent) {
  EXPECT_NE(LabelPath{1}.Hash(), (LabelPath{1, 0}).Hash());
  EXPECT_NE((LabelPath{1, 2}).Hash(), (LabelPath{2, 1}).Hash());
  EXPECT_EQ((LabelPath{1, 2}).Hash(), (LabelPath{1, 2}).Hash());
}

TEST(LabelPathTest, ParseAndToString) {
  Graph g = testing_util::SmallGraph();
  auto p = LabelPath::Parse("a/b/c", g.labels());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->length(), 3u);
  EXPECT_EQ(p->ToString(g.labels()), "a/b/c");
}

TEST(LabelPathTest, ParseRejectsUnknownLabel) {
  Graph g = testing_util::SmallGraph();
  EXPECT_EQ(LabelPath::Parse("a/zz", g.labels()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LabelPath::Parse("", g.labels()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LabelPath::Parse("a//b", g.labels()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LabelPathTest, CapacityIsEnforced) {
  LabelPath p;
  for (size_t i = 0; i < kMaxPathLength; ++i) p.PushBack(0);
  EXPECT_DEATH(p.PushBack(0), "kMaxPathLength");
}

TEST(PathSpaceTest, SizesMatchGeometricSeries) {
  PathSpace space(3, 2);
  EXPECT_EQ(space.size(), 12u);  // 3 + 9
  EXPECT_EQ(space.CountWithLength(1), 3u);
  EXPECT_EQ(space.CountWithLength(2), 9u);
  EXPECT_EQ(space.LengthOffset(1), 0u);
  EXPECT_EQ(space.LengthOffset(2), 3u);

  PathSpace big(8, 6);
  EXPECT_EQ(big.size(), 8u + 64 + 512 + 4096 + 32768 + 262144);
}

TEST(PathSpaceTest, CanonicalRoundTrip) {
  PathSpace space(4, 3);
  for (uint64_t i = 0; i < space.size(); ++i) {
    LabelPath p = space.CanonicalPath(i);
    EXPECT_EQ(space.CanonicalIndex(p), i);
    EXPECT_TRUE(space.Contains(p));
  }
}

TEST(PathSpaceTest, ForEachVisitsCanonicalOrderExactlyOnce) {
  PathSpace space(3, 3);
  uint64_t expected = 0;
  space.ForEach([&](const LabelPath& p) {
    EXPECT_EQ(space.CanonicalIndex(p), expected);
    ++expected;
  });
  EXPECT_EQ(expected, space.size());
}

TEST(PathSpaceTest, ContainsRejectsForeignPaths) {
  PathSpace space(3, 2);
  EXPECT_FALSE(space.Contains(LabelPath{}));            // empty
  EXPECT_FALSE(space.Contains(LabelPath{3}));           // label out of range
  EXPECT_FALSE(space.Contains((LabelPath{0, 0, 0})));   // too long
  EXPECT_TRUE(space.Contains((LabelPath{2, 2})));
}

TEST(BaseLabelSetTest, SingleLabels) {
  BaseLabelSet base = BaseLabelSet::SingleLabels(4);
  EXPECT_EQ(base.size(), 4u);
  EXPECT_EQ(base.max_piece_length(), 1u);
  EXPECT_TRUE(base.Contains(LabelPath{3}));
  EXPECT_FALSE(base.Contains((LabelPath{0, 1})));
}

TEST(BaseLabelSetTest, UpToLengthIsL2) {
  BaseLabelSet base = BaseLabelSet::UpToLength(3, 2);
  EXPECT_EQ(base.size(), 12u);  // |L_2| over 3 labels
  EXPECT_TRUE(base.Contains((LabelPath{2, 1})));
  EXPECT_EQ(base.max_piece_length(), 2u);
}

TEST(BaseLabelSetTest, CustomRequiresSingles) {
  auto missing =
      BaseLabelSet::Custom(2, {LabelPath{0}, LabelPath{0, 1}});
  EXPECT_FALSE(missing.ok());  // single label 1 absent
  auto ok = BaseLabelSet::Custom(2, {LabelPath{0}, LabelPath{1},
                                     LabelPath{0, 1}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 3u);
}

TEST(GreedySplitTest, PaperExample) {
  // Paper §3.1: with B = L_2, "4/4/3/3/6" splits into "4/4", "3/3", "6".
  // Using ids: labels 0..5 stand for "1".."6".
  BaseLabelSet base = BaseLabelSet::UpToLength(6, 2);
  LabelPath path{3, 3, 2, 2, 5};
  auto pieces = GreedySplit(path, base);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], (LabelPath{3, 3}));
  EXPECT_EQ(pieces[1], (LabelPath{2, 2}));
  EXPECT_EQ(pieces[2], (LabelPath{5}));
}

TEST(GreedySplitTest, SingleLabelBaseSplitsFully) {
  BaseLabelSet base = BaseLabelSet::SingleLabels(4);
  LabelPath path{1, 2, 3};
  auto pieces = GreedySplit(path, base);
  ASSERT_EQ(pieces.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(pieces[i].length(), 1u);
}

TEST(GreedySplitTest, PiecesConcatenateToOriginal) {
  BaseLabelSet base = BaseLabelSet::UpToLength(3, 2);
  PathSpace space(3, 5);
  space.ForEach([&](const LabelPath& p) {
    LabelPath rebuilt;
    for (const LabelPath& piece : GreedySplit(p, base)) {
      for (size_t i = 0; i < piece.length(); ++i) {
        rebuilt.PushBack(piece.label(i));
      }
    }
    EXPECT_EQ(rebuilt, p);
  });
}

TEST(GreedySplitTest, GreedyPrefersLongestPiece) {
  // Custom base {0, 1, 0/1}: path 0/1 must split as one piece, not two.
  auto base = BaseLabelSet::Custom(2, {LabelPath{0}, LabelPath{1},
                                       LabelPath{0, 1}});
  ASSERT_TRUE(base.ok());
  auto pieces = GreedySplit((LabelPath{0, 1}), *base);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], (LabelPath{0, 1}));
}

}  // namespace
}  // namespace pathest
