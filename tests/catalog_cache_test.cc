// Tests for the bounded-residency snapshot cache (core/catalog_cache.h):
// re-pin identity on unchanged files, LRU eviction under a byte budget,
// pinned-entry survival, and a multithreaded eviction/re-pin torture run
// checked against a serial oracle while estimates are in flight.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/catalog_cache.h"
#include "core/mapped_catalog.h"
#include "core/serialize.h"
#include "ordering/factory.h"
#include "path/selectivity.h"
#include "test_util.h"
#include "util/safe_io.h"

namespace pathest {
namespace {

namespace fs = std::filesystem;
using testing_util::SmallGraph;

// Scratch-carrying estimate helper (Estimator::Estimate is the
// allocation-free serving API; tests just want the value).
double EstimateOne(const Estimator& est, const LabelPath& p,
                   RankScratch& scratch) {
  return est.Estimate(p, scratch);
}

class CatalogCacheTest : public ::testing::Test {
 protected:
  CatalogCacheTest() : graph_(SmallGraph()) {
    dir_ = fs::temp_directory_path() / "pathest_cache_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~CatalogCacheTest() override { fs::remove_all(dir_); }

  // Saves a fresh v2 catalog under `name` and returns its path. Different
  // beta values give byte-identical sizes (the layout is beta-paged), so
  // distinct entries are just distinct files.
  std::string SaveEntry(const std::string& name, const std::string& method,
                        size_t k, size_t beta) {
    auto map = ComputeSelectivities(graph_, k);
    PATHEST_CHECK(map.ok(), "selectivities failed");
    auto ordering = MakeOrdering(method, graph_, k);
    PATHEST_CHECK(ordering.ok(), "ordering failed");
    auto est = PathHistogram::Build(*map, std::move(*ordering),
                                    HistogramType::kVOptimal, beta);
    PATHEST_CHECK(est.ok(), "build failed");
    const std::string path = (dir_ / name).string();
    PATHEST_CHECK(
        SavePathHistogram(*est, graph_, path, CatalogFormat::kBinaryV2).ok(),
        "save failed");
    return path;
  }

  Graph graph_;
  fs::path dir_;
};

TEST_F(CatalogCacheTest, UnchangedFileRepinsTheSameMapping) {
  const std::string path = SaveEntry("a.stats", "sum-based", 3, 6);
  CatalogCache cache;
  auto first = cache.GetOrOpen(path);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.GetOrOpen(path);
  ASSERT_TRUE(second.ok());
  // Pointer identity IS the contract: a reload of an unchanged entry must
  // not re-read a byte, just re-pin.
  EXPECT_EQ(first->get(), second->get());
  const CatalogCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.mapped_bytes, (*first)->mapped_bytes());
  ASSERT_EQ(stats.per_entry.size(), 1u);
  EXPECT_TRUE(stats.per_entry[0].pinned);  // we hold two refs right here
  EXPECT_GT(stats.per_entry[0].resident_bytes, 0u);
  EXPECT_LT(stats.per_entry[0].resident_bytes,
            stats.per_entry[0].mapped_bytes);
}

TEST_F(CatalogCacheTest, RewrittenFileIsANewGeneration) {
  const std::string path = SaveEntry("a.stats", "sum-based", 3, 6);
  CatalogCache cache;
  auto first = cache.GetOrOpen(path);
  ASSERT_TRUE(first.ok());
  const FileId old_id = (*first)->file_id();
  // Rewrite with different content (different beta → different bytes).
  SaveEntry("a.stats", "sum-based", 3, 8);
  auto second = cache.GetOrOpen(path);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->get(), second->get());
  EXPECT_FALSE((*second)->file_id() == old_id);
  EXPECT_EQ(cache.Stats().misses, 2u);
  EXPECT_EQ(cache.Stats().entries, 1u);
  // The displaced mapping still serves its old bytes while we pin it.
  EXPECT_EQ((*first)->histogram_type(), HistogramType::kVOptimal);
}

TEST_F(CatalogCacheTest, LruEvictionUnderBudget) {
  std::vector<std::string> paths;
  for (int i = 0; i < 4; ++i) {
    paths.push_back(SaveEntry("e" + std::to_string(i) + ".stats",
                              "sum-based", 3, 6));
  }
  const size_t one = fs::file_size(paths[0]);
  // Budget for two entries; all four files are the same size.
  CatalogCache cache(CatalogCacheOptions{2 * one, CatalogVerify::kChecksums});
  for (const std::string& p : paths) {
    auto e = cache.GetOrOpen(p);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    // e drops at scope end: every entry is unpinned and evictable.
  }
  const CatalogCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_LE(stats.mapped_bytes, 2 * one);
  // LRU: the two most recently opened survive.
  std::vector<std::string> kept;
  for (const auto& e : stats.per_entry) kept.push_back(e.path);
  EXPECT_EQ(kept, (std::vector<std::string>{paths[2], paths[3]}));
  // Touching e2 then inserting a new entry must evict e3, not e2.
  ASSERT_TRUE(cache.GetOrOpen(paths[2]).ok());
  ASSERT_TRUE(cache.GetOrOpen(paths[0]).ok());
  std::vector<std::string> kept2;
  for (const auto& e : cache.Stats().per_entry) kept2.push_back(e.path);
  EXPECT_EQ(kept2, (std::vector<std::string>{paths[0], paths[2]}));
}

TEST_F(CatalogCacheTest, PinnedSnapshotsSurviveBudgetPressure) {
  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    paths.push_back(SaveEntry("p" + std::to_string(i) + ".stats",
                              "sum-based", 3, 6));
  }
  // A budget of ZERO: nothing unpinned may stay resident at all.
  CatalogCache cache(CatalogCacheOptions{0, CatalogVerify::kChecksums});
  auto pinned = cache.GetOrOpen(paths[0]);
  ASSERT_TRUE(pinned.ok());
  for (const std::string& p : paths) {
    auto e = cache.GetOrOpen(p);
    ASSERT_TRUE(e.ok());
  }
  const CatalogCacheStats stats = cache.Stats();
  // The pinned entry survives — over budget, but NEVER evicted while
  // references exist outside the cache. (The most recent insertion also
  // remains: it was pinned by its own caller at insertion time, and
  // eviction sweeps run at insertions only.)
  ASSERT_EQ(stats.entries, 2u);
  bool pinned_survived = false;
  for (const auto& e : stats.per_entry) {
    if (e.path == paths[0]) {
      pinned_survived = true;
      EXPECT_TRUE(e.pinned);
    }
  }
  EXPECT_TRUE(pinned_survived);
  // The pinned mapping keeps serving correct estimates under pressure.
  PathSpace space(graph_.num_labels(), 3);
  RankScratch scratch;
  scratch.Reserve(graph_.num_labels());
  space.ForEach([&](const LabelPath& p) {
    (void)EstimateOne((*pinned)->estimator(), p, scratch);
  });
  // Release the pin: the next insertion sweep evicts it.
  pinned->reset();
  auto e = cache.GetOrOpen(paths[1]);
  ASSERT_TRUE(e.ok());
  const CatalogCacheStats after = cache.Stats();
  ASSERT_EQ(after.entries, 1u);
  EXPECT_EQ(after.per_entry[0].path, paths[1]);
}

TEST_F(CatalogCacheTest, OpenFailuresLeaveTheCacheConsistent) {
  const std::string path = SaveEntry("a.stats", "sum-based", 3, 6);
  CatalogCache cache;
  EXPECT_EQ(cache.GetOrOpen((dir_ / "missing").string()).status().code(),
            StatusCode::kNotFound);
  // Corrupt file: admission checksum rejects, cache stays usable.
  const std::string bad = (dir_ / "bad.stats").string();
  fs::copy_file(path, bad);
  {
    std::fstream f(bad, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(bad) - 7));
    char byte;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte ^= 0x40;
    f.write(&byte, 1);
  }
  EXPECT_EQ(cache.GetOrOpen(bad).status().code(), StatusCode::kIOError);
  EXPECT_EQ(cache.Stats().entries, 0u);
  auto good = cache.GetOrOpen(path);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(cache.Stats().entries, 1u);
}

// Eviction/re-pin torture: reader threads estimate through cache-pinned
// snapshots while a writer thread keeps rewriting one file and a churn
// thread cycles other entries through a tiny budget (forcing constant
// eviction and re-open). Every estimate observed must match the serial
// oracle for SOME complete generation — never a torn or stale-mapped mix.
TEST_F(CatalogCacheTest, EvictionRepinTortureMatchesSerialOracle) {
  const size_t k = 3;
  // Two generations of the contended entry with DIFFERENT orderings — the
  // ordering name is the generation discriminator a reader can recover
  // from a pinned snapshot no matter how the file has moved on since.
  const std::string hot = SaveEntry("hot.stats", "sum-based", k, 6);
  std::string gen_a, gen_b;
  ASSERT_TRUE(ReadFileToString(hot, &gen_a).ok());
  SaveEntry("hot.stats", "num-card", k, 6);
  ASSERT_TRUE(ReadFileToString(hot, &gen_b).ok());
  std::vector<std::string> churn;
  for (int i = 0; i < 3; ++i) {
    churn.push_back(SaveEntry("churn" + std::to_string(i) + ".stats",
                              "num-card", k, 4 + i));
  }

  // Serial oracle: full-domain estimates for both generations.
  PathSpace space(graph_.num_labels(), k);
  std::vector<LabelPath> domain;
  space.ForEach([&](const LabelPath& p) { domain.push_back(p); });
  auto oracle_for = [&](const std::string& bytes) {
    const std::string tmp = (dir_ / "oracle.stats").string();
    PATHEST_CHECK(AtomicWriteFile(tmp, bytes).ok(), "oracle write");
    auto loaded = LoadPathHistogram(tmp);
    PATHEST_CHECK(loaded.ok(), "oracle load");
    std::vector<double> out(domain.size());
    for (size_t i = 0; i < domain.size(); ++i) {
      out[i] = loaded->estimator.Estimate(domain[i]);
    }
    return out;
  };
  const std::vector<double> oracle_a = oracle_for(gen_a);
  const std::vector<double> oracle_b = oracle_for(gen_b);

  // Budget of ~one entry: the churn thread's opens constantly evict the
  // hot entry whenever it is unpinned.
  CatalogCache cache(
      CatalogCacheOptions{gen_a.size(), CatalogVerify::kChecksums});
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    bool use_a = false;
    while (!stop.load(std::memory_order_relaxed)) {
      PATHEST_CHECK(
          AtomicWriteFile(hot, use_a ? gen_a : gen_b).ok(), "rewrite");
      use_a = !use_a;
      std::this_thread::yield();
    }
  });
  std::thread churner([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)cache.GetOrOpen(churn[i++ % churn.size()]);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      RankScratch scratch;
      scratch.Reserve(graph_.num_labels());
      while (!stop.load(std::memory_order_relaxed)) {
        auto entry = cache.GetOrOpen(hot);
        if (!entry.ok()) continue;  // raced a mid-rename stat; try again
        // Pin held across the whole sweep: eviction/rewrite during the
        // sweep must not perturb a single estimate.
        const Estimator& est = (*entry)->estimator();
        const bool is_a = (*entry)->ordering_name() == "sum-based";
        const std::vector<double>& oracle = is_a ? oracle_a : oracle_b;
        for (size_t i = 0; i < domain.size(); ++i) {
          if (est.Estimate(domain[i], scratch) != oracle[i]) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop.store(true);
  writer.join();
  churner.join();
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(failures.load(), 0);
  const CatalogCacheStats stats = cache.Stats();
  // The torture must actually have exercised both machineries.
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

}  // namespace
}  // namespace pathest
