// Unit tests for the ranking rules (paper Section 3.1).

#include <gtest/gtest.h>

#include "ordering/ranking.h"
#include "test_util.h"

namespace pathest {
namespace {

TEST(RankingTest, AlphabeticalUsesNames) {
  LabelDictionary dict;
  dict.Intern("zeta");   // id 0
  dict.Intern("alpha");  // id 1
  dict.Intern("mid");    // id 2
  LabelRanking ranking = LabelRanking::Alphabetical(dict);
  EXPECT_EQ(ranking.rule(), RankingRule::kAlphabetical);
  EXPECT_EQ(ranking.RankOf(1), 1u);  // alpha
  EXPECT_EQ(ranking.RankOf(2), 2u);  // mid
  EXPECT_EQ(ranking.RankOf(0), 3u);  // zeta
}

TEST(RankingTest, CardinalityLowestFirst) {
  Graph g = testing_util::PaperExampleGraph();  // 1->20, 2->100, 3->80
  LabelRanking ranking =
      LabelRanking::Cardinality(g.labels(), {20, 100, 80});
  EXPECT_EQ(ranking.RankOf(*g.labels().Find("1")), 1u);
  EXPECT_EQ(ranking.RankOf(*g.labels().Find("3")), 2u);
  EXPECT_EQ(ranking.RankOf(*g.labels().Find("2")), 3u);
}

TEST(RankingTest, CardinalityTiesBrokenByName) {
  LabelDictionary dict;
  dict.Intern("b");
  dict.Intern("a");
  LabelRanking ranking = LabelRanking::Cardinality(dict, {7, 7});
  EXPECT_EQ(ranking.RankOf(*dict.Find("a")), 1u);
  EXPECT_EQ(ranking.RankOf(*dict.Find("b")), 2u);
}

TEST(RankingTest, RoundTripBijection) {
  LabelDictionary dict;
  for (int i = 0; i < 8; ++i) dict.Intern(std::to_string((i * 3) % 8));
  for (auto rule : {RankingRule::kAlphabetical, RankingRule::kCardinality}) {
    std::vector<uint64_t> cards = {5, 1, 9, 3, 7, 2, 8, 4};
    LabelRanking ranking = LabelRanking::Make(rule, dict, cards);
    for (uint32_t r = 1; r <= 8; ++r) {
      EXPECT_EQ(ranking.RankOf(ranking.LabelAt(r)), r);
    }
    for (LabelId l = 0; l < 8; ++l) {
      EXPECT_EQ(ranking.LabelAt(ranking.RankOf(l)), l);
    }
  }
}

TEST(RankingTest, RuleNames) {
  EXPECT_STREQ(RankingRuleName(RankingRule::kAlphabetical), "alph");
  EXPECT_STREQ(RankingRuleName(RankingRule::kCardinality), "card");
}

TEST(RankingTest, NumericNamesSortLexicographically) {
  // Note: alphabetical ranking is by NAME, so "10" < "2". This mirrors the
  // behaviour of dictionary orders on string labels.
  LabelDictionary dict;
  dict.Intern("2");
  dict.Intern("10");
  LabelRanking ranking = LabelRanking::Alphabetical(dict);
  EXPECT_EQ(ranking.RankOf(*dict.Find("10")), 1u);
  EXPECT_EQ(ranking.RankOf(*dict.Find("2")), 2u);
}

}  // namespace
}  // namespace pathest
