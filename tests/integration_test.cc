// End-to-end integration tests: dataset generation -> exact selectivities ->
// ordering -> V-optimal histogram -> estimation accuracy, exercising the
// same pipeline the paper's Figure 2 uses (at reduced scale).

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "gen/datasets.h"
#include "ordering/factory.h"
#include "path/selectivity.h"

namespace pathest {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.04;
  static constexpr size_t kK = 4;

  void SetUp() override {
    auto graph = BuildDataset(DatasetId::kMorenoHealth, kScale, 123);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<Graph>(std::move(*graph));
    auto map = ComputeSelectivities(*graph_, kK);
    ASSERT_TRUE(map.ok());
    map_ = std::make_unique<SelectivityMap>(std::move(*map));
  }

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<SelectivityMap> map_;
};

TEST_F(PipelineTest, AllOrderingsProduceBoundedError) {
  const uint64_t n = PathSpace(graph_->num_labels(), kK).size();
  for (const std::string& method : PaperOrderingNames()) {
    auto result =
        MeasureAccuracy(*graph_, *map_, method, kK, n / 16,
                        HistogramType::kVOptimal);
    ASSERT_TRUE(result.ok()) << method;
    EXPECT_GE(result->errors.mean_abs_error, 0.0) << method;
    EXPECT_LE(result->errors.mean_abs_error, 1.0) << method;
    EXPECT_EQ(result->errors.num_queries, n) << method;
  }
}

TEST_F(PipelineTest, ErrorDecreasesWithMoreBuckets) {
  const uint64_t n = PathSpace(graph_->num_labels(), kK).size();
  double prev = 1.0;
  for (size_t beta : {n / 64, n / 16, n / 4, n}) {
    auto result = MeasureAccuracy(*graph_, *map_, "sum-based", kK, beta,
                                  HistogramType::kVOptimal);
    ASSERT_TRUE(result.ok());
    // Greedy v-optimal is nested across beta, so error is monotone up to
    // noise; allow a small tolerance.
    EXPECT_LE(result->errors.mean_abs_error, prev + 0.02) << "beta " << beta;
    prev = result->errors.mean_abs_error;
  }
  EXPECT_DOUBLE_EQ(prev, 0.0);  // beta == n is exact
}

TEST_F(PipelineTest, CardinalityRankingHelpsOnSkewedData) {
  // On Zipf-skewed moreno-like data the paper's headline effect should show
  // at small bucket budgets: sum-based <= num-alph in mean error.
  const uint64_t n = PathSpace(graph_->num_labels(), kK).size();
  auto sum = MeasureAccuracy(*graph_, *map_, "sum-based", kK, n / 64,
                             HistogramType::kVOptimal);
  auto num_alph = MeasureAccuracy(*graph_, *map_, "num-alph", kK, n / 64,
                                  HistogramType::kVOptimal);
  ASSERT_TRUE(sum.ok());
  ASSERT_TRUE(num_alph.ok());
  EXPECT_LE(sum->errors.mean_abs_error,
            num_alph->errors.mean_abs_error + 0.02);
}

TEST_F(PipelineTest, IdealIsTheFloor) {
  const uint64_t n = PathSpace(graph_->num_labels(), kK).size();
  auto ideal = MeasureAccuracy(*graph_, *map_, "ideal", kK, n / 32,
                               HistogramType::kVOptimal);
  ASSERT_TRUE(ideal.ok());
  for (const std::string& method : PaperOrderingNames()) {
    auto r = MeasureAccuracy(*graph_, *map_, method, kK, n / 32,
                             HistogramType::kVOptimal);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r->errors.mean_abs_error,
              ideal->errors.mean_abs_error - 0.01)
        << method;
  }
}

TEST_F(PipelineTest, HistogramTypesAllWork) {
  const uint64_t n = PathSpace(graph_->num_labels(), kK).size();
  for (HistogramType type :
       {HistogramType::kEquiWidth, HistogramType::kEquiDepth,
        HistogramType::kVOptimal, HistogramType::kMaxDiff,
        HistogramType::kEndBiased}) {
    auto r = MeasureAccuracy(*graph_, *map_, "sum-based", kK, n / 16, type);
    ASSERT_TRUE(r.ok()) << HistogramTypeName(type);
    EXPECT_LE(r->errors.mean_abs_error, 1.0);
  }
}

TEST(MultiDatasetSmokeTest, TinyEndToEndOnAllDatasets) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    auto graph = BuildDataset(spec.id, 0.02, 7);
    ASSERT_TRUE(graph.ok()) << spec.name;
    auto map = ComputeSelectivities(*graph, 3);
    ASSERT_TRUE(map.ok()) << spec.name;
    const uint64_t n = PathSpace(graph->num_labels(), 3).size();
    auto r = MeasureAccuracy(*graph, *map, "sum-based", 3, n / 8,
                             HistogramType::kVOptimal);
    ASSERT_TRUE(r.ok()) << spec.name;
    EXPECT_LE(r->errors.mean_abs_error, 1.0) << spec.name;
  }
}

}  // namespace
}  // namespace pathest
