// Unit and property tests for the exact selectivity evaluator.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/generator.h"
#include "graph/graph_builder.h"
#include "path/selectivity.h"
#include "test_util.h"

namespace pathest {
namespace {

using testing_util::SmallGraph;

// Reference evaluator: naive DFS over all concrete paths, collecting
// distinct endpoint pairs.
uint64_t NaiveSelectivity(const Graph& g, const LabelPath& path) {
  std::set<std::pair<VertexId, VertexId>> pairs;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    std::vector<VertexId> frontier = {s};
    for (size_t i = 0; i < path.length(); ++i) {
      std::set<VertexId> next;
      for (VertexId v : frontier) {
        for (VertexId u : g.OutNeighbors(v, path.label(i))) next.insert(u);
      }
      frontier.assign(next.begin(), next.end());
      if (frontier.empty()) break;
    }
    for (VertexId t : frontier) pairs.insert({s, t});
  }
  return pairs.size();
}

TEST(SelectivityTest, SingleLabelsEqualLabelCardinality) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 3);
  ASSERT_TRUE(map.ok());
  for (LabelId l = 0; l < g.num_labels(); ++l) {
    EXPECT_EQ(map->Get(LabelPath{l}), g.LabelCardinality(l));
  }
}

TEST(SelectivityTest, HandComputedPaths) {
  Graph g = SmallGraph();
  LabelId a = *g.labels().Find("a");
  LabelId b = *g.labels().Find("b");
  LabelId c = *g.labels().Find("c");
  auto map = ComputeSelectivities(g, 3);
  ASSERT_TRUE(map.ok());
  // a/b: 0-a->1-b->3, 0-a->2-b->3 (same pair (0,3)); 1 has no a to a b-src...
  // pairs: (0,3). Also 1-a->3: 3 has no b. => {(0,3)} singleton.
  EXPECT_EQ(map->Get(LabelPath{a, b}), 1u);
  // b/c: 1-b->3-c->0 and 2-b->3-c->0 -> pairs (1,0), (2,0).
  EXPECT_EQ(map->Get(LabelPath{b, c}), 2u);
  // a/b/c: (0,0) via both branches -> 1 distinct pair.
  EXPECT_EQ(map->Get(LabelPath{a, b, c}), 1u);
  // c/a: 3-c->0-a->{1,2} -> (3,1), (3,2).
  EXPECT_EQ(map->Get(LabelPath{c, a}), 2u);
  // b/b: no b-edge out of 3 -> 0.
  EXPECT_EQ(map->Get(LabelPath{b, b}), 0u);
}

TEST(SelectivityTest, MatchesNaiveOnSmallGraph) {
  Graph g = SmallGraph();
  const size_t k = 4;
  auto map = ComputeSelectivities(g, k);
  ASSERT_TRUE(map.ok());
  PathSpace space(g.num_labels(), k);
  space.ForEach([&](const LabelPath& p) {
    EXPECT_EQ(map->Get(p), NaiveSelectivity(g, p)) << p.ToIdString();
  });
}

TEST(SelectivityTest, MatchesNaiveOnRandomGraphs) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    UniformLabelAssigner labels(3);
    ErdosRenyiParams params;
    params.num_vertices = 30;
    params.num_edges = 90;
    params.seed = seed;
    auto g = GenerateErdosRenyi(params, &labels);
    ASSERT_TRUE(g.ok());
    auto map = ComputeSelectivities(*g, 3);
    ASSERT_TRUE(map.ok());
    PathSpace space(3, 3);
    space.ForEach([&](const LabelPath& p) {
      EXPECT_EQ(map->Get(p), NaiveSelectivity(*g, p))
          << "seed " << seed << " path " << p.ToIdString();
    });
  }
}

TEST(SelectivityTest, PrefixMonotoneUpperBound) {
  // f(ℓ1/ℓ2) <= f(ℓ1) * max-out-degree bound is loose; the useful invariant
  // here: if a prefix has zero pairs, every extension has zero pairs.
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 4);
  ASSERT_TRUE(map.ok());
  PathSpace space(g.num_labels(), 4);
  space.ForEach([&](const LabelPath& p) {
    if (p.length() < 2) return;
    if (map->Get(p.Prefix(p.length() - 1)) == 0) {
      EXPECT_EQ(map->Get(p), 0u) << p.ToIdString();
    }
  });
}

TEST(SelectivityTest, EvaluateSinglePathAgreesWithMap) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 3);
  ASSERT_TRUE(map.ok());
  PathSpace space(g.num_labels(), 3);
  space.ForEach([&](const LabelPath& p) {
    auto f = EvaluatePathSelectivity(g, p);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(*f, map->Get(p));
  });
}

TEST(SelectivityTest, PairsAreSortedAndDistinct) {
  Graph g = SmallGraph();
  LabelId a = *g.labels().Find("a");
  LabelId b = *g.labels().Find("b");
  auto pairs = EvaluatePathPairs(g, LabelPath{a, b});
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ((*pairs)[0], (uint64_t{0} << 32) | 3u);
}

TEST(SelectivityTest, RejectsBadInput) {
  Graph g = SmallGraph();
  EXPECT_FALSE(EvaluatePathSelectivity(g, LabelPath{}).ok());
  EXPECT_FALSE(EvaluatePathSelectivity(g, LabelPath{99}).ok());
  EXPECT_FALSE(ComputeSelectivities(g, 0).ok());
  EXPECT_FALSE(ComputeSelectivities(g, kMaxPathLength + 1).ok());
}

TEST(SelectivityTest, MaxPairsGuardTriggers) {
  Graph g = SmallGraph();
  SelectivityOptions options;
  options.max_pairs_per_prefix = 1;  // everything interesting exceeds this
  auto map = ComputeSelectivities(g, 2, options);
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kResourceExhausted);
}

TEST(SelectivityTest, ProgressCallbackFires) {
  Graph g = SmallGraph();
  SelectivityOptions options;
  int calls = 0;
  options.progress = [&](LabelId) { ++calls; };
  auto map = ComputeSelectivities(g, 2, options);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(calls, 3);
}

TEST(SelectivityMapTest, TotalsAndNonZero) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 2);
  ASSERT_TRUE(map.ok());
  uint64_t total = 0;
  uint64_t nonzero = 0;
  for (uint64_t v : map->values()) {
    total += v;
    nonzero += (v != 0);
  }
  EXPECT_EQ(map->Total(), total);
  EXPECT_EQ(map->CountNonZero(), nonzero);
  EXPECT_GT(nonzero, 0u);
}

TEST(SelectivityTest, DisconnectedLabelsYieldZeros) {
  GraphBuilder builder;
  builder.AddEdge(0, "p", 1);
  builder.AddLabel("q");  // label with no edges
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto map = ComputeSelectivities(*g, 2);
  ASSERT_TRUE(map.ok());
  LabelId q = *g->labels().Find("q");
  LabelId p = *g->labels().Find("p");
  EXPECT_EQ(map->Get(LabelPath{q}), 0u);
  EXPECT_EQ(map->Get((LabelPath{p, q})), 0u);
  EXPECT_EQ(map->Get((LabelPath{q, p})), 0u);
  EXPECT_EQ(map->Get(LabelPath{p}), 1u);
}

}  // namespace
}  // namespace pathest
