// The crash matrix of the edge-delta journal (maint/delta_journal.h): a
// VALID journal is subjected to every corruption class the format claims
// to survive — truncation at every byte, bit flips and forged lengths in
// tail vs mid-file position, and scripted crashes at every write/sync
// stage of append, recovery, and reset. The contract under test:
//
//   * torn tails (no valid frame after the damage) scan OK and recovery
//     amputates them durably — nothing ACKNOWLEDGED is ever lost;
//   * mid-file corruption (a valid frame after the damage) is a hard
//     IOError, never a silent truncation of acknowledged records;
//   * a crashed append leaves exactly a torn-tail artifact, and reopen +
//     re-append of the unacknowledged batch converges (idempotent replay);
//   * a crashed reset (compaction's last step) leaves the previous journal
//     byte-identical with no temp debris.

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "maint/delta_journal.h"
#include "util/crc32c.h"
#include "util/fault_injection.h"
#include "util/safe_io.h"

namespace pathest {
namespace maint {
namespace {

constexpr size_t kHeader = sizeof(kJournalMagic);

class DeltaJournalTest : public ::testing::Test {
 protected:
  DeltaJournalTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("pathest_journal_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "deltas.journal").string();
  }

  ~DeltaJournalTest() override { std::filesystem::remove_all(dir_); }

  // A representative record mix: both edge kinds, a barrier, a marker.
  static std::vector<DeltaRecord> SampleRecords() {
    return {DeltaRecord::Compaction(3),
            DeltaRecord::AddEdge(1, 2, 0),
            DeltaRecord::AddEdge(0xFFFFFFFFu, 7, 2),
            DeltaRecord::RemoveEdge(1, 2, 0),
            DeltaRecord::Barrier(4),
            DeltaRecord::AddEdge(5, 6, 1)};
  }

  // The byte image of a journal holding `recs`, built frame by frame —
  // the same bytes the writer produces, but assembled in memory so the
  // corruption sweeps can slice it freely.
  static std::string ImageOf(const std::vector<DeltaRecord>& recs) {
    std::string bytes(kJournalMagic, kHeader);
    for (const DeltaRecord& rec : recs) AppendJournalFrame(&bytes, rec);
    return bytes;
  }

  // Frame start offsets of `recs` in ImageOf(recs), plus the end offset.
  static std::vector<size_t> FrameBoundaries(
      const std::vector<DeltaRecord>& recs) {
    std::vector<size_t> at{kHeader};
    std::string bytes(kJournalMagic, kHeader);
    for (const DeltaRecord& rec : recs) {
      AppendJournalFrame(&bytes, rec);
      at.push_back(bytes.size());
    }
    return at;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(DeltaJournalTest, WriterRoundTripsAllRecordKinds) {
  const std::vector<DeltaRecord> recs = SampleRecords();
  DeltaJournalWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  for (const DeltaRecord& rec : recs) {
    ASSERT_TRUE(writer.Append(rec).ok());
  }
  writer.Close();

  auto scan = ScanDeltaJournal(path_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->records, recs);
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->last_good_offset, scan->file_bytes);
  // And the writer's bytes are exactly the reference image.
  auto bytes = ReadFileBytes(path_);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, ImageOf(recs));
}

TEST_F(DeltaJournalTest, AppendBatchIsOneDurableGroupCommit) {
  const std::vector<DeltaRecord> recs = SampleRecords();
  DeltaJournalWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.AppendBatch(recs).ok());
  EXPECT_EQ(writer.offset(), ImageOf(recs).size());
  writer.Close();
  auto scan = ScanDeltaJournal(path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records, recs);
}

TEST_F(DeltaJournalTest, MissingFileIsNotFoundAndNonJournalIsIOError) {
  EXPECT_EQ(ScanDeltaJournal(path_).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(WriteFileBytes(path_, "definitely not a journal").ok());
  EXPECT_EQ(ScanDeltaJournal(path_).status().code(), StatusCode::kIOError);
  DeltaJournalWriter writer;
  EXPECT_EQ(writer.Open(path_).code(), StatusCode::kIOError);
}

TEST_F(DeltaJournalTest, HeaderOnlyAndEmptyFilesScanClean) {
  // A fresh writer leaves header-only: zero records, nothing torn.
  {
    DeltaJournalWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    writer.Close();
  }
  auto scan = ScanDeltaJournal(path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->last_good_offset, kHeader);
  EXPECT_FALSE(scan->torn_tail);

  // A zero-byte file is a crash at creation before any byte landed.
  ASSERT_TRUE(WriteFileBytes(path_, "").ok());
  scan = ScanDeltaJournal(path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->last_good_offset, 0u);
}

TEST_F(DeltaJournalTest, EveryTruncationPointIsATornTailNeverAHardError) {
  // Truncation models a crash mid-append: recovery must classify EVERY cut
  // as a torn tail (or clean boundary), return exactly the records whose
  // frames lie fully before the cut, and amputate so appends can resume.
  const std::vector<DeltaRecord> recs = SampleRecords();
  const std::string image = ImageOf(recs);
  const std::vector<size_t> bounds = FrameBoundaries(recs);

  for (size_t cut = 0; cut < image.size(); ++cut) {
    ASSERT_TRUE(WriteFileBytes(path_, image.substr(0, cut)).ok());
    auto scan = ScanDeltaJournal(path_);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": "
                           << scan.status().ToString();

    size_t whole_frames = 0;
    size_t good_offset = cut >= kHeader ? kHeader : 0;
    for (size_t i = 1; i < bounds.size(); ++i) {
      if (bounds[i] <= cut) {
        good_offset = bounds[i];
        ++whole_frames;
      }
    }

    ASSERT_EQ(scan->records.size(), whole_frames) << "cut=" << cut;
    for (size_t i = 0; i < whole_frames; ++i) {
      EXPECT_EQ(scan->records[i], recs[i]) << "cut=" << cut;
    }
    EXPECT_EQ(scan->last_good_offset, good_offset) << "cut=" << cut;
    EXPECT_EQ(scan->torn_tail, cut != good_offset) << "cut=" << cut;
    EXPECT_EQ(scan->tail_bytes, cut - good_offset) << "cut=" << cut;

    // Recovery amputates; a reopened writer then appends cleanly and the
    // re-journaled suffix restores the full record stream (idempotent
    // replay: re-appending records the tear swallowed is always safe).
    auto recovered = RecoverDeltaJournal(path_);
    ASSERT_TRUE(recovered.ok()) << "cut=" << cut;
    EXPECT_EQ(recovered->file_bytes, good_offset == 0 ? 0 : good_offset);
    DeltaJournalWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok()) << "cut=" << cut;
    std::vector<DeltaRecord> tail(recs.begin() + whole_frames, recs.end());
    ASSERT_TRUE(writer.AppendBatch(tail).ok()) << "cut=" << cut;
    writer.Close();
    auto healed = ScanDeltaJournal(path_);
    ASSERT_TRUE(healed.ok()) << "cut=" << cut;
    EXPECT_EQ(healed->records, recs) << "cut=" << cut;
  }
}

TEST_F(DeltaJournalTest, DamageInTheLastFrameIsATornTail) {
  const std::vector<DeltaRecord> recs = SampleRecords();
  const std::string image = ImageOf(recs);
  const std::vector<size_t> bounds = FrameBoundaries(recs);
  const size_t last_start = bounds[bounds.size() - 2];

  // Bit flips across the final frame: length, CRC, payload bytes.
  for (size_t at = last_start; at < image.size(); ++at) {
    std::string corrupt = image;
    ASSERT_TRUE(FlipBit(&corrupt, at, static_cast<int>(at % 8)).ok());
    ASSERT_TRUE(WriteFileBytes(path_, corrupt).ok());
    auto scan = ScanDeltaJournal(path_);
    ASSERT_TRUE(scan.ok()) << "flip at " << at << ": "
                           << scan.status().ToString();
    EXPECT_TRUE(scan->torn_tail) << "flip at " << at;
    EXPECT_EQ(scan->last_good_offset, last_start) << "flip at " << at;
    EXPECT_EQ(scan->records.size(), recs.size() - 1) << "flip at " << at;
  }

  // A forged huge length in the last frame: out-of-range by validation,
  // not by allocation.
  std::string corrupt = image;
  corrupt[last_start] = '\xFF';
  corrupt[last_start + 1] = '\xFF';
  corrupt[last_start + 2] = '\xFF';
  corrupt[last_start + 3] = '\xFF';
  ASSERT_TRUE(WriteFileBytes(path_, corrupt).ok());
  auto scan = ScanDeltaJournal(path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->last_good_offset, last_start);
}

TEST_F(DeltaJournalTest, DamageBeforeAValidFrameIsMidFileCorruption) {
  // The same damage classes applied to the FIRST frame — with five valid
  // frames behind it — must be hard errors: truncating there would drop
  // acknowledged records.
  const std::vector<DeltaRecord> recs = SampleRecords();
  const std::string image = ImageOf(recs);
  const std::vector<size_t> bounds = FrameBoundaries(recs);

  for (size_t at = bounds[0]; at < bounds[1]; ++at) {
    std::string corrupt = image;
    ASSERT_TRUE(FlipBit(&corrupt, at, static_cast<int>(at % 8)).ok());
    ASSERT_TRUE(WriteFileBytes(path_, corrupt).ok());
    auto scan = ScanDeltaJournal(path_);
    ASSERT_FALSE(scan.ok()) << "flip at " << at << " scanned clean";
    EXPECT_EQ(scan.status().code(), StatusCode::kIOError);
  }

  // Forged length mid-file.
  std::string corrupt = image;
  corrupt[bounds[0]] = '\xFF';
  corrupt[bounds[0] + 1] = '\xFF';
  ASSERT_TRUE(WriteFileBytes(path_, corrupt).ok());
  EXPECT_EQ(ScanDeltaJournal(path_).status().code(), StatusCode::kIOError);

  // Header damage is always fatal — the file is not a journal.
  corrupt = image;
  ASSERT_TRUE(FlipBit(&corrupt, 2, 5).ok());
  ASSERT_TRUE(WriteFileBytes(path_, corrupt).ok());
  EXPECT_EQ(ScanDeltaJournal(path_).status().code(), StatusCode::kIOError);
}

TEST_F(DeltaJournalTest, CrcValidFrameWithGarbagePayloadIsHardError) {
  // A frame whose checksum PASSES but whose payload is unparseable (bad
  // kind byte, wrong field width) is corruption the CRC cannot see —
  // forged deliberately here, with the CRC recomputed over the garbage.
  std::string bytes(kJournalMagic, kHeader);
  std::string payload;
  payload.push_back('\x7E');  // unknown kind
  AppendU32(&payload, 1);
  AppendU32(&payload, 2);
  AppendU32(&payload, 0);
  AppendU32(&bytes, static_cast<uint32_t>(payload.size()));
  AppendU32(&bytes, Crc32cMask(Crc32c(payload.data(), payload.size())));
  bytes.append(payload);
  ASSERT_TRUE(WriteFileBytes(path_, bytes).ok());
  auto scan = ScanDeltaJournal(path_);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kIOError);

  // Same for a wrong-width edge payload (valid kind, truncated fields).
  bytes.assign(kJournalMagic, kHeader);
  payload.clear();
  payload.push_back(static_cast<char>(DeltaRecord::Kind::kAddEdge));
  AppendU32(&payload, 1);  // src only — dst and label missing
  AppendU32(&bytes, static_cast<uint32_t>(payload.size()));
  AppendU32(&bytes, Crc32cMask(Crc32c(payload.data(), payload.size())));
  bytes.append(payload);
  ASSERT_TRUE(WriteFileBytes(path_, bytes).ok());
  EXPECT_EQ(ScanDeltaJournal(path_).status().code(), StatusCode::kIOError);
}

TEST_F(DeltaJournalTest, CrashedAppendLeavesRecoverableTornTailAtEveryByte) {
  // The append crash matrix: establish three acknowledged records, then
  // kill a batch append at every write offset and at fsync. After each
  // crash: the acknowledged records must scan out intact, recovery must
  // succeed, and re-appending the batch (what a restarted daemon does with
  // an unacknowledged client retry) must converge to the full stream.
  const std::vector<DeltaRecord> acked = {DeltaRecord::AddEdge(1, 2, 0),
                                          DeltaRecord::AddEdge(2, 3, 1),
                                          DeltaRecord::Barrier(1)};
  const std::vector<DeltaRecord> batch = {DeltaRecord::AddEdge(3, 4, 0),
                                          DeltaRecord::RemoveEdge(1, 2, 0),
                                          DeltaRecord::Barrier(2)};
  std::string batch_bytes;
  for (const DeltaRecord& rec : batch) {
    AppendJournalFrame(&batch_bytes, rec);
  }

  for (size_t fail_at = 0; fail_at <= batch_bytes.size(); ++fail_at) {
    const bool fail_sync_only = fail_at == batch_bytes.size();
    std::filesystem::remove(path_);
    {
      DeltaJournalWriter writer;
      ASSERT_TRUE(writer.Open(path_).ok());
      ASSERT_TRUE(writer.AppendBatch(acked).ok());
      writer.Close();
    }
    {
      // Reopen (recovery contract) so the injector's byte counter starts
      // at the batch's first byte.
      DeltaJournalWriter writer;
      ASSERT_TRUE(writer.Open(path_).ok());
      ScriptedWriteFaults faults;
      if (fail_sync_only) {
        faults.fail_sync = true;
      } else {
        faults.fail_write_at_byte = fail_at;
      }
      ScriptedWriteFaults::Install install(&faults);
      Status st = writer.AppendBatch(batch);
      ASSERT_FALSE(st.ok()) << "fail_at=" << fail_at;
      EXPECT_EQ(st.code(), StatusCode::kIOError);
      writer.Close();
    }

    // The crash artifact: acknowledged records intact, tail possibly torn.
    auto recovered = RecoverDeltaJournal(path_);
    ASSERT_TRUE(recovered.ok()) << "fail_at=" << fail_at << ": "
                                << recovered.status().ToString();
    ASSERT_GE(recovered->records.size(), acked.size());
    for (size_t i = 0; i < acked.size(); ++i) {
      EXPECT_EQ(recovered->records[i], acked[i]) << "fail_at=" << fail_at;
    }
    EXPECT_FALSE(recovered->torn_tail);  // amputated already

    // Idempotent replay: re-append the whole batch, whether or not a
    // prefix of it survived the crash. The stream converges.
    {
      DeltaJournalWriter writer;
      ASSERT_TRUE(writer.Open(path_).ok()) << "fail_at=" << fail_at;
      ASSERT_TRUE(writer.AppendBatch(batch).ok()) << "fail_at=" << fail_at;
      writer.Close();
    }
    auto healed = ScanDeltaJournal(path_);
    ASSERT_TRUE(healed.ok()) << "fail_at=" << fail_at;
    ASSERT_GE(healed->records.size(), acked.size() + batch.size());
    // The last |batch| records are the re-appended batch; everything
    // before is acked plus (on a post-write sync failure) a stale copy —
    // which EdgeDeltasFromRecords replay handles by set semantics.
    const size_t n = healed->records.size();
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(healed->records[n - batch.size() + i], batch[i])
          << "fail_at=" << fail_at;
    }
  }
}

TEST_F(DeltaJournalTest, CrashedHeaderCreationRecovers) {
  // Kill the very first header write: the artifact is a magic PREFIX,
  // which scans as a torn tail at offset zero, recovers to an empty file,
  // and opens cleanly afterward.
  for (size_t fail_at : {size_t{0}, size_t{3}, size_t{7}}) {
    std::filesystem::remove(path_);
    {
      ScriptedWriteFaults faults;
      faults.fail_write_at_byte = fail_at;
      ScriptedWriteFaults::Install install(&faults);
      DeltaJournalWriter writer;
      EXPECT_FALSE(writer.Open(path_).ok()) << "fail_at=" << fail_at;
    }
    auto recovered = RecoverDeltaJournal(path_);
    ASSERT_TRUE(recovered.ok()) << "fail_at=" << fail_at;
    EXPECT_TRUE(recovered->records.empty());
    DeltaJournalWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok()) << "fail_at=" << fail_at;
    ASSERT_TRUE(writer.Append(DeltaRecord::AddEdge(1, 2, 0)).ok());
    writer.Close();
    auto scan = ScanDeltaJournal(path_);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(scan->records.size(), 1u);
  }
}

TEST_F(DeltaJournalTest, CrashedResetLeavesPreviousJournalIntact) {
  // ResetDeltaJournal is the last step of a compaction; killing it at any
  // stage must leave the old journal byte-identical (replaying the folded
  // records over the new base is idempotent) and drop no temp debris.
  const std::vector<DeltaRecord> recs = SampleRecords();
  {
    DeltaJournalWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    ASSERT_TRUE(writer.AppendBatch(recs).ok());
    writer.Close();
  }
  auto before = ReadFileBytes(path_);
  ASSERT_TRUE(before.ok());

  auto stage = [&](ScriptedWriteFaults faults, const char* what) {
    ScriptedWriteFaults::Install install(&faults);
    Status st = ResetDeltaJournal(path_, 9);
    EXPECT_FALSE(st.ok()) << what;
  };
  {
    ScriptedWriteFaults f;
    f.fail_write_at_byte = 4;
    stage(f, "short write");
  }
  {
    ScriptedWriteFaults f;
    f.fail_sync = true;
    stage(f, "fsync");
  }
  {
    ScriptedWriteFaults f;
    f.fail_rename = true;
    stage(f, "rename");
  }

  auto after = ReadFileBytes(path_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
  size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);

  // Without the injector the reset goes through: header + one marker.
  ASSERT_TRUE(ResetDeltaJournal(path_, 9).ok());
  auto scan = ScanDeltaJournal(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0], DeltaRecord::Compaction(9));
}

}  // namespace
}  // namespace maint
}  // namespace pathest
