// The robustness proof of the binary catalog (core/serialize.h): take one
// VALID catalog image and replay every corruption class against the loader
// — truncation at every interesting byte, single-bit flips in every
// region, forged count/length fields that survive the checksum walk, and
// crashes at every stage of an atomic save. EVERY injected fault must
// yield a typed Status (no crash, hang, OOM, or silently wrong estimator),
// and a crashed save must leave the previous catalog byte-identical.

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/mapped_catalog.h"
#include "core/serialize.h"
#include "ordering/factory.h"
#include "path/selectivity.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/safe_io.h"

namespace pathest {
namespace {

using testing_util::SmallGraph;

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : graph_(SmallGraph()) {
    auto map = ComputeSelectivities(graph_, 3);
    PATHEST_CHECK(map.ok(), "selectivities failed");
    map_ = std::make_unique<SelectivityMap>(std::move(*map));
    dir_ = std::filesystem::temp_directory_path() /
           ("pathest_fault_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }

  ~FaultInjectionTest() override { std::filesystem::remove_all(dir_); }

  PathHistogram BuildEstimator(const std::string& method, size_t beta) {
    auto ordering = MakeOrdering(method, graph_, 3);
    PATHEST_CHECK(ordering.ok(), "ordering failed");
    auto est = PathHistogram::Build(*map_, std::move(*ordering),
                                    HistogramType::kVOptimal, beta);
    PATHEST_CHECK(est.ok(), "estimator failed");
    return std::move(*est);
  }

  // A valid binary image of a sum-based estimator (carries all 5 sections).
  std::string ValidImage(const std::string& method = "sum-based") {
    PathHistogram est = BuildEstimator(method, 6);
    std::vector<uint64_t> cards;
    for (LabelId l = 0; l < graph_.num_labels(); ++l) {
      cards.push_back(graph_.LabelCardinality(l));
    }
    std::string bytes;
    PATHEST_CHECK(
        WritePathHistogramBinary(est, graph_.labels(), cards, &bytes).ok(),
        "binary write failed");
    return bytes;
  }

  // The fault contract: the loader must return a typed error — and, being
  // in-memory parsing of a byte image, returning AT ALL rules out the
  // crash/hang failure mode for that input.
  void ExpectTypedFailure(const std::string& image, const std::string& what) {
    auto loaded = ReadPathHistogramBinary(image);
    ASSERT_FALSE(loaded.ok()) << what << ": corrupt image loaded cleanly";
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError)
        << what << ": " << loaded.status().ToString();
    EXPECT_FALSE(loaded.status().message().empty()) << what;
  }

  Graph graph_;
  std::unique_ptr<SelectivityMap> map_;
  std::filesystem::path dir_;
};

TEST_F(FaultInjectionTest, ValidImageLoadsAndMatchesOriginal) {
  // Sanity anchor for everything below: the uncorrupted image round-trips.
  PathHistogram original = BuildEstimator("sum-based", 6);
  const std::string image = ValidImage();
  auto loaded = ReadPathHistogramBinary(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  PathSpace space(graph_.num_labels(), 3);
  space.ForEach([&](const LabelPath& p) {
    EXPECT_DOUBLE_EQ(loaded->estimator.Estimate(p), original.Estimate(p));
  });
}

TEST_F(FaultInjectionTest, EveryTruncationPointFailsTyped) {
  const std::string image = ValidImage();
  const std::vector<size_t> points = TruncationPoints(image);
  // The sweep must actually cover the header byte-by-byte and every
  // section boundary: 33 header points + 5 sections.
  ASSERT_GT(points.size(), 40u);
  for (size_t cut : points) {
    ExpectTypedFailure(image.substr(0, cut),
                       "truncate to " + std::to_string(cut));
  }
  // And a coarse whole-file sweep (every 7th byte) for points the
  // boundary enumeration might miss.
  for (size_t cut = 0; cut < image.size(); cut += 7) {
    ExpectTypedFailure(image.substr(0, cut),
                       "truncate to " + std::to_string(cut));
  }
}

TEST_F(FaultInjectionTest, SingleBitFlipInEverySectionFailsTyped) {
  const std::string image = ValidImage();
  auto sections = ParseBinarySectionTable(image);
  ASSERT_TRUE(sections.ok());
  ASSERT_EQ(sections->size(), 5u);  // sum-based carries all five
  for (const BinarySectionInfo& s : *sections) {
    // First, middle, and last byte of every payload, a couple of bits each.
    for (size_t at : {s.offset, s.offset + s.length / 2,
                      s.offset + s.length - 1}) {
      for (int bit : {0, 7}) {
        std::string corrupt = image;
        ASSERT_TRUE(FlipBit(&corrupt, at, bit).ok());
        ExpectTypedFailure(corrupt, std::string("flip in section ") +
                                        binfmt::SectionName(s.id));
      }
    }
  }
}

TEST_F(FaultInjectionTest, BitFlipsInHeaderAndTableFailTyped) {
  const std::string image = ValidImage();
  const size_t guarded =
      binfmt::kHeaderBytes + 5 * binfmt::kSectionEntryBytes;
  for (size_t at = 0; at < guarded; ++at) {
    std::string corrupt = image;
    ASSERT_TRUE(FlipBit(&corrupt, at, at % 8).ok());
    ExpectTypedFailure(corrupt, "flip at header/table byte " +
                                    std::to_string(at));
  }
}

TEST_F(FaultInjectionTest, ForgedHugeBucketCountIsErrorNotOom) {
  // The forged count is written THROUGH PatchSectionPayload, which
  // refreshes the CRC — so the checksum walk passes and the count reaches
  // the allocation-guarding validation (the exact path a flipped count
  // plus a colliding CRC would take).
  const std::string image = ValidImage();
  for (uint64_t forged :
       {uint64_t{1} << 60, uint64_t{0xFFFFFFFFFFFFFFFF},
        uint64_t{1} << 32}) {
    std::string corrupt = image;
    std::string le;
    AppendU64(&le, forged);
    ASSERT_TRUE(PatchSectionPayload(&corrupt, binfmt::kSectionHistogram,
                                    /*offset_in_payload=*/0, le)
                    .ok());
    auto loaded = ReadPathHistogramBinary(corrupt);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
    EXPECT_NE(loaded.status().message().find("implausible count"),
              std::string::npos)
        << loaded.status().ToString();
  }
}

TEST_F(FaultInjectionTest, ForgedLabelCountAndLengthFailTyped) {
  const std::string image = ValidImage();
  {
    // Label count forged huge (CRC refreshed).
    std::string corrupt = image;
    std::string le;
    AppendU32(&le, 0xFFFFFFFFu);
    ASSERT_TRUE(PatchSectionPayload(&corrupt, binfmt::kSectionLabels, 0, le)
                    .ok());
    ExpectTypedFailure(corrupt, "forged label count");
  }
  {
    // First label's length prefix forged past the payload.
    std::string corrupt = image;
    std::string le;
    AppendU32(&le, 0x7FFFFFFFu);
    ASSERT_TRUE(PatchSectionPayload(&corrupt, binfmt::kSectionLabels, 4, le)
                    .ok());
    ExpectTypedFailure(corrupt, "forged label length");
  }
  {
    // Cardinality count that disagrees with the label count.
    std::string corrupt = image;
    std::string le;
    AppendU32(&le, 7);
    ASSERT_TRUE(PatchSectionPayload(&corrupt, binfmt::kSectionCardinalities,
                                    0, le)
                    .ok());
    ExpectTypedFailure(corrupt, "mismatched cardinality count");
  }
  {
    // k forged to 0 and past kMaxPathLength in the ordering section; the
    // field sits after the two length-prefixed strings.
    auto find_k_offset = [&]() -> size_t {
      BoundedReader r(image.data() + binfmt::kHeaderBytes +
                          5 * binfmt::kSectionEntryBytes,
                      image.size());
      std::string skip;
      size_t before = r.remaining();
      PATHEST_CHECK(r.ReadLengthPrefixedString(&skip, 64, "t").ok(), "t");
      PATHEST_CHECK(r.ReadLengthPrefixedString(&skip, 64, "t").ok(), "t");
      return before - r.remaining();
    };
    for (uint32_t forged_k : {0u, 250u}) {
      std::string corrupt = image;
      std::string le;
      AppendU32(&le, forged_k);
      ASSERT_TRUE(PatchSectionPayload(&corrupt, binfmt::kSectionOrdering,
                                      find_k_offset(), le)
                      .ok());
      ExpectTypedFailure(corrupt, "forged k=" + std::to_string(forged_k));
    }
  }
}

TEST_F(FaultInjectionTest, ForgedSectionExtentsFailTyped) {
  const std::string image = ValidImage();
  // Section count forged huge (header CRC will catch it) and, separately,
  // a table entry pointing outside the file (table CRC intact via patch of
  // the raw entry + recomputed CRCs is deliberately NOT done here — the
  // crc-mismatch path is itself the assertion).
  {
    std::string corrupt = image;
    corrupt[12] = '\x40';  // section count low byte -> 64+
    ExpectTypedFailure(corrupt, "forged section count");
  }
  {
    std::string corrupt = image;
    // Offset field of the first table entry (header + 8) -> huge.
    std::memset(corrupt.data() + binfmt::kHeaderBytes + 8, 0x7F, 8);
    ExpectTypedFailure(corrupt, "forged section offset");
  }
}

TEST_F(FaultInjectionTest, CompositionMismatchIsCaughtSemantically) {
  // A wrong-but-well-formed composition value with a VALID CRC: only the
  // semantic cross-check against the rebuilt table can see it.
  const std::string image = ValidImage("sum-based");
  std::string corrupt = image;
  std::string le;
  AppendU64(&le, 424242);
  // Payload: u32 |L|, u32 k, u64 count, then values — patch value 0.
  ASSERT_TRUE(PatchSectionPayload(&corrupt, binfmt::kSectionComposition, 16,
                                  le)
                  .ok());
  auto loaded = ReadPathHistogramBinary(corrupt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("mismatch"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(FaultInjectionTest, TextForgedCountsFailTyped) {
  // The text reader's forged-count regression (the unbounded-reserve bug):
  // a huge claimed count must be an IOError before any allocation.
  PathHistogram est = BuildEstimator("num-card", 4);
  std::vector<uint64_t> cards;
  for (LabelId l = 0; l < graph_.num_labels(); ++l) {
    cards.push_back(graph_.LabelCardinality(l));
  }
  std::ostringstream out;
  ASSERT_TRUE(WritePathHistogram(est, graph_.labels(), cards, &out).ok());
  const std::string text = out.str();

  auto with_forged = [&](const std::string& key, const std::string& count) {
    const size_t pos = text.find(key + " ");
    PATHEST_CHECK(pos != std::string::npos, "key not found");
    const size_t num_start = pos + key.size() + 1;
    const size_t num_end = text.find_first_of(" \n", num_start);
    std::string forged = text;
    forged.replace(num_start, num_end - num_start, count);
    return forged;
  };
  for (const char* count : {"123456789012", "18446744073709551615"}) {
    for (const char* key : {"labels", "buckets"}) {
      std::istringstream in(with_forged(key, count));
      auto loaded = ReadPathHistogram(&in);
      ASSERT_FALSE(loaded.ok()) << key << "=" << count;
      EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
    }
  }
}

TEST_F(FaultInjectionTest, CrashedSaveLeavesPreviousCatalogIntact) {
  // Establish a valid catalog file, then crash a re-save at every stage:
  // short write at several offsets, failed fsync, failed rename. Each must
  // return a Status, leave the published file byte-identical, and leave no
  // temp debris that a reader could mistake for the catalog.
  const std::string path = (dir_ / "crash.stats").string();
  const std::string original_image = ValidImage("sum-based");
  ASSERT_TRUE(AtomicWriteFile(path, original_image).ok());

  const std::string replacement_image = ValidImage("num-card");
  for (size_t fail_at : {size_t{0}, size_t{1}, size_t{17},
                         replacement_image.size() / 2,
                         replacement_image.size() - 1}) {
    ScriptedWriteFaults faults;
    faults.fail_write_at_byte = fail_at;
    ScriptedWriteFaults::Install install(&faults);
    Status st = AtomicWriteFile(path, replacement_image);
    ASSERT_FALSE(st.ok()) << "fail_at=" << fail_at;
    EXPECT_EQ(st.code(), StatusCode::kIOError);
  }
  {
    ScriptedWriteFaults faults;
    faults.fail_sync = true;
    ScriptedWriteFaults::Install install(&faults);
    EXPECT_FALSE(AtomicWriteFile(path, replacement_image).ok());
  }
  {
    ScriptedWriteFaults faults;
    faults.fail_rename = true;
    ScriptedWriteFaults::Install install(&faults);
    EXPECT_FALSE(AtomicWriteFile(path, replacement_image).ok());
  }

  // The previous catalog is byte-identical and still loads.
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, original_image);
  EXPECT_TRUE(LoadPathHistogram(path).ok());
  // No temp debris left behind.
  size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);

  // And with no injector, the re-save goes through atomically.
  ASSERT_TRUE(AtomicWriteFile(path, replacement_image).ok());
  auto after = ReadFileBytes(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, replacement_image);
}

TEST_F(FaultInjectionTest, CrashedSaveAllLeavesCatalogServingAndIntact) {
  // The same guarantee one level up: StatisticsCatalog::SaveAll dying
  // mid-flight must leave every previously saved entry loadable.
  auto catalog = StatisticsCatalog::Analyze(graph_, 3);
  ASSERT_TRUE(catalog.ok());
  CatalogEntryConfig config;
  config.ordering = "sum-based";
  config.num_buckets = 8;
  ASSERT_TRUE(catalog->BuildEstimator("a", config).ok());
  config.ordering = "num-card";
  ASSERT_TRUE(catalog->BuildEstimator("b", config).ok());
  ASSERT_TRUE(
      catalog->SaveAll(dir_.string(), nullptr, CatalogFormat::kBinary).ok());
  auto before_a = ReadFileBytes((dir_ / "a.stats").string());
  auto before_b = ReadFileBytes((dir_ / "b.stats").string());
  ASSERT_TRUE(before_a.ok());
  ASSERT_TRUE(before_b.ok());

  {
    ScriptedWriteFaults faults;
    faults.fail_write_at_byte = 100;
    ScriptedWriteFaults::Install install(&faults);
    EXPECT_FALSE(
        catalog->SaveAll(dir_.string(), nullptr, CatalogFormat::kBinary)
            .ok());
  }
  auto after_a = ReadFileBytes((dir_ / "a.stats").string());
  auto after_b = ReadFileBytes((dir_ / "b.stats").string());
  ASSERT_TRUE(after_a.ok());
  ASSERT_TRUE(after_b.ok());
  EXPECT_EQ(*after_a, *before_a);
  EXPECT_EQ(*after_b, *before_b);
  CatalogLoadReport report;
  ASSERT_TRUE(catalog->LoadAll(dir_.string(), &report).ok());
  EXPECT_TRUE(report.fully_healthy());
  EXPECT_EQ(report.loaded.size(), 2u);
}

TEST_F(FaultInjectionTest, DegradedCatalogServesHealthyEntries) {
  // One corrupt entry must quarantine, not abort: the healthy entries keep
  // loading and serving.
  auto catalog = StatisticsCatalog::Analyze(graph_, 3);
  ASSERT_TRUE(catalog.ok());
  CatalogEntryConfig config;
  config.ordering = "sum-based";
  config.num_buckets = 8;
  ASSERT_TRUE(catalog->BuildEstimator("good", config).ok());
  config.ordering = "lex-card";
  ASSERT_TRUE(catalog->BuildEstimator("bad", config).ok());
  ASSERT_TRUE(
      catalog->SaveAll(dir_.string(), nullptr, CatalogFormat::kBinary).ok());

  // Corrupt "bad" with a bit flip inside its histogram section.
  auto bytes = ReadFileBytes((dir_ / "bad.stats").string());
  ASSERT_TRUE(bytes.ok());
  auto sections = ParseBinarySectionTable(*bytes);
  ASSERT_TRUE(sections.ok());
  for (const BinarySectionInfo& s : *sections) {
    if (s.id == binfmt::kSectionHistogram) {
      ASSERT_TRUE(FlipBit(&*bytes, s.offset + 11, 3).ok());
    }
  }
  ASSERT_TRUE(WriteFileBytes((dir_ / "bad.stats").string(), *bytes).ok());

  auto fresh = StatisticsCatalog::Analyze(graph_, 3);
  ASSERT_TRUE(fresh.ok());
  CatalogLoadReport report;
  ASSERT_TRUE(fresh->LoadAll(dir_.string(), &report).ok());
  EXPECT_EQ(report.loaded, std::vector<std::string>{"good"});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].path.find("bad.stats"), std::string::npos);
  EXPECT_EQ(report.failures[0].section, "histogram");
  EXPECT_EQ(report.failures[0].status.code(), StatusCode::kIOError);

  // The healthy entry answers.
  LabelId a = *graph_.labels().Find("a");
  EXPECT_TRUE(fresh->Estimate("good", LabelPath{a}).ok());
  EXPECT_EQ(fresh->Estimate("bad", LabelPath{a}).status().code(),
            StatusCode::kNotFound);

  // And VerifyCatalogDir sees exactly the same picture graph-free.
  auto verify = VerifyCatalogDir(dir_.string());
  ASSERT_TRUE(verify.ok());
  EXPECT_EQ(verify->loaded, std::vector<std::string>{"good"});
  ASSERT_EQ(verify->failures.size(), 1u);
  EXPECT_EQ(verify->failures[0].section, "histogram");
}

// ===================== binary catalog v2 faults =====================
//
// The v2 format adds two byte classes v1 never had: INTER-SECTION padding
// (the gap that rounds each section offset up to a page boundary — outside
// every CRC, never read) and INTERIOR alignment padding (the gap that
// rounds each array offset up to 64 within a payload — inside the payload
// CRC). The suite proves the first is ignorable and the second is guarded,
// and that truncation is typed at every page-boundary edge.

class FaultInjectionV2Test : public FaultInjectionTest {
 protected:
  std::string ValidImageV2(const std::string& method = "sum-based") {
    PathHistogram est = BuildEstimator(method, 6);
    std::vector<uint64_t> cards;
    for (LabelId l = 0; l < graph_.num_labels(); ++l) {
      cards.push_back(graph_.LabelCardinality(l));
    }
    std::string bytes;
    PATHEST_CHECK(
        WritePathHistogramBinaryV2(est, graph_.labels(), cards, &bytes).ok(),
        "v2 write failed");
    return bytes;
  }

  void ExpectTypedFailureV2(const std::string& image,
                            const std::string& what) {
    auto loaded = ReadPathHistogramBinaryV2(image);
    ASSERT_FALSE(loaded.ok()) << what << ": corrupt v2 image loaded cleanly";
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError)
        << what << ": " << loaded.status().ToString();
    EXPECT_FALSE(loaded.status().message().empty()) << what;
  }

  // Full-domain estimates of an image — the bit-level identity anchor.
  std::vector<double> AllEstimates(const LoadedPathHistogram& loaded) {
    std::vector<double> out;
    PathSpace space(graph_.num_labels(), 3);
    space.ForEach(
        [&](const LabelPath& p) { out.push_back(loaded.estimator.Estimate(p)); });
    return out;
  }
};

TEST_F(FaultInjectionV2Test, TruncationAtEveryPageBoundaryEdgeFailsTyped) {
  const std::string image = ValidImageV2();
  ASSERT_GT(image.size(), 2 * binfmt::kPageBytes)
      << "need a multi-page image for the boundary sweep";
  // Every p-1 / p / p+1 around every page multiple: the edges where a
  // torn write of an aligned format would land.
  size_t swept = 0;
  for (size_t page = binfmt::kPageBytes; page < image.size() + 1;
       page += binfmt::kPageBytes) {
    for (size_t cut : {page - 1, page, page + 1}) {
      if (cut >= image.size()) continue;
      ExpectTypedFailureV2(image.substr(0, cut),
                           "truncate to " + std::to_string(cut));
      ++swept;
    }
  }
  ASSERT_GT(swept, 6u);
  // Header at byte granularity plus a coarse whole-file sweep.
  for (size_t cut = 0; cut <= binfmt::kHeaderBytes; ++cut) {
    ExpectTypedFailureV2(image.substr(0, cut),
                         "truncate to " + std::to_string(cut));
  }
  for (size_t cut = 0; cut < image.size(); cut += 61) {
    ExpectTypedFailureV2(image.substr(0, cut),
                         "truncate to " + std::to_string(cut));
  }
  // The mmap loader honors the same contract from disk.
  const std::string path = (dir_ / "trunc.stats").string();
  ASSERT_TRUE(
      WriteFileBytes(path, image.substr(0, image.size() - 1)).ok());
  auto mapped = MappedCatalogEntry::Open(path, CatalogVerify::kChecksums);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIOError);
}

TEST_F(FaultInjectionV2Test, PaddingFlipsIgnoredOutsideCrcsCaughtInside) {
  const std::string image = ValidImageV2();
  auto sections = ParseBinarySectionTable(image);
  ASSERT_TRUE(sections.ok());
  ASSERT_EQ(sections->size(), 6u);  // sum-based carries all six in v2
  auto baseline = ReadPathHistogramBinaryV2(image);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::vector<double> expect = AllEstimates(*baseline);

  // Inter-section padding — [end of payload i, offset of section i+1) and
  // the gap between the section table and the first section — is outside
  // every CRC and never read: flips there must be PROVABLY ignored (the
  // file still passes the strictest tier and serves bit-identical
  // estimates).
  std::vector<std::pair<size_t, size_t>> gaps;
  gaps.emplace_back(
      binfmt::kHeaderBytes + sections->size() * binfmt::kSectionEntryBytes,
      (*sections)[0].offset);
  for (size_t i = 0; i + 1 < sections->size(); ++i) {
    gaps.emplace_back((*sections)[i].offset + (*sections)[i].length,
                      (*sections)[i + 1].offset);
  }
  size_t padding_flips = 0;
  for (const auto& [lo, hi] : gaps) {
    ASSERT_LE(lo, hi);
    if (lo == hi) continue;  // a payload that ended exactly on a page
    for (size_t at : {lo, (lo + hi) / 2, hi - 1}) {
      for (int bit : {0, 7}) {
        std::string corrupt = image;
        ASSERT_TRUE(FlipBit(&corrupt, at, bit).ok());
        auto loaded = ReadPathHistogramBinaryV2(corrupt);
        ASSERT_TRUE(loaded.ok())
            << "padding flip at " << at << " rejected: "
            << loaded.status().ToString();
        EXPECT_EQ(AllEstimates(*loaded), expect)
            << "padding flip at " << at << " changed an estimate";
        ++padding_flips;
      }
    }
  }
  ASSERT_GT(padding_flips, 0u) << "no inter-section padding to sweep";

  // Interior alignment padding — the [prolog end, first array) gap inside
  // the histogram and composition payloads — is INSIDE the payload CRC:
  // a flip there must be detected even though no parser ever reads it.
  for (const BinarySectionInfo& s : *sections) {
    if (s.id != binfmt::kSectionHistogram &&
        s.id != binfmt::kSectionComposition) {
      continue;
    }
    ASSERT_GT(s.length, binfmt::kArrayAlignBytes);
    // Prologs are 16 bytes; arrays start at the 64-byte mark.
    for (size_t in_payload : {size_t{16}, size_t{40},
                              size_t{binfmt::kArrayAlignBytes - 1}}) {
      std::string corrupt = image;
      ASSERT_TRUE(FlipBit(&corrupt, s.offset + in_payload, 3).ok());
      ExpectTypedFailureV2(corrupt,
                           std::string("interior padding flip in ") +
                               binfmt::SectionName(s.id));
    }
  }
}

TEST_F(FaultInjectionV2Test, CrashedV2SaveLeavesV1FileByteIdentical) {
  // The upgrade story: converting a v1 entry to v2 in place crashes at
  // every stage — the published v1 file must stay byte-identical and
  // loadable, with no temp debris.
  const std::string path = (dir_ / "upgrade.stats").string();
  const std::string v1_image = ValidImage("sum-based");
  ASSERT_TRUE(AtomicWriteFile(path, v1_image).ok());
  auto loaded = LoadPathHistogram(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<double> expect = AllEstimates(*loaded);

  for (size_t fail_at :
       {size_t{0}, size_t{1}, size_t{17}, binfmt::kPageBytes,
        binfmt::kPageBytes + 1}) {
    ScriptedWriteFaults faults;
    faults.fail_write_at_byte = fail_at;
    ScriptedWriteFaults::Install install(&faults);
    Status st =
        SaveLoadedPathHistogram(*loaded, path, CatalogFormat::kBinaryV2);
    ASSERT_FALSE(st.ok()) << "fail_at=" << fail_at;
    EXPECT_EQ(st.code(), StatusCode::kIOError);
  }
  {
    ScriptedWriteFaults faults;
    faults.fail_sync = true;
    ScriptedWriteFaults::Install install(&faults);
    EXPECT_FALSE(
        SaveLoadedPathHistogram(*loaded, path, CatalogFormat::kBinaryV2)
            .ok());
  }
  {
    ScriptedWriteFaults faults;
    faults.fail_rename = true;
    ScriptedWriteFaults::Install install(&faults);
    EXPECT_FALSE(
        SaveLoadedPathHistogram(*loaded, path, CatalogFormat::kBinaryV2)
            .ok());
  }

  // Byte-identical v1, still sniffs as v1, still loads, no debris.
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, v1_image);
  auto format = SniffCatalogFormat(path);
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(*format, CatalogFormat::kBinary);
  size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);

  // With the injector gone the conversion lands, and the v2 file serves
  // the exact same estimates.
  ASSERT_TRUE(
      SaveLoadedPathHistogram(*loaded, path, CatalogFormat::kBinaryV2).ok());
  format = SniffCatalogFormat(path);
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(*format, CatalogFormat::kBinaryV2);
  auto v2 = LoadPathHistogram(path);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(AllEstimates(*v2), expect);
}

}  // namespace
}  // namespace pathest
