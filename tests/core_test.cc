// Unit tests for core: distributions, error metrics, workloads, the
// PathHistogram estimator, and the experiment runner.

#include <cmath>

#include <gtest/gtest.h>

#include "core/distribution.h"
#include "core/error.h"
#include "core/experiment.h"
#include "core/path_histogram.h"
#include "core/report.h"
#include "core/workload.h"
#include "ordering/factory.h"
#include "ordering/ideal.h"
#include "path/selectivity.h"
#include "test_util.h"

namespace pathest {
namespace {

using testing_util::SmallGraph;

TEST(ErrorMetricTest, Formula6) {
  EXPECT_DOUBLE_EQ(SignedErrorRate(5, 5), 0.0);
  EXPECT_DOUBLE_EQ(SignedErrorRate(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(SignedErrorRate(10, 5), 0.5);    // overestimate
  EXPECT_DOUBLE_EQ(SignedErrorRate(5, 10), -0.5);   // underestimate
  EXPECT_DOUBLE_EQ(SignedErrorRate(0, 10), -1.0);
  EXPECT_DOUBLE_EQ(SignedErrorRate(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(AbsoluteErrorRate(5, 10), 0.5);
}

TEST(ErrorMetricTest, BoundedByOne) {
  for (double e : {0.0, 0.1, 3.0, 1e9}) {
    for (double f : {0.0, 0.5, 7.0, 1e6}) {
      EXPECT_LE(AbsoluteErrorRate(e, f), 1.0);
      EXPECT_GE(AbsoluteErrorRate(e, f), 0.0);
    }
  }
}

TEST(ErrorMetricTest, QError) {
  EXPECT_DOUBLE_EQ(QError(10, 5), 2.0);
  EXPECT_DOUBLE_EQ(QError(5, 10), 2.0);
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0, 8), 8.0);
  EXPECT_DOUBLE_EQ(QError(4, 4), 1.0);
}

TEST(ErrorSummaryTest, Aggregates) {
  ErrorSummary s = SummarizeErrors({0.0, 0.0, 0.5, 1.0});
  EXPECT_EQ(s.num_queries, 4u);
  EXPECT_DOUBLE_EQ(s.mean_abs_error, 0.375);
  EXPECT_DOUBLE_EQ(s.max_abs_error, 1.0);
  EXPECT_DOUBLE_EQ(s.exact_fraction, 0.5);
  EXPECT_DOUBLE_EQ(s.median_abs_error, 0.0);  // lower median of 4
  ErrorSummary empty = SummarizeErrors({});
  EXPECT_EQ(empty.num_queries, 0u);
}

TEST(DistributionTest, IdealOrderingSortsDistribution) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 3);
  ASSERT_TRUE(map.ok());
  IdealOrdering ideal(*map);
  auto dist = BuildDistribution(*map, ideal);
  ASSERT_TRUE(dist.ok());
  for (size_t i = 1; i < dist->size(); ++i) {
    EXPECT_LE((*dist)[i - 1], (*dist)[i]);
  }
}

TEST(DistributionTest, PermutesSelectivities) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 2);
  ASSERT_TRUE(map.ok());
  for (const std::string& method : PaperOrderingNames()) {
    auto ordering = MakeOrdering(method, g, 2);
    ASSERT_TRUE(ordering.ok());
    auto dist = BuildDistribution(*map, **ordering);
    ASSERT_TRUE(dist.ok());
    // Same multiset of values as the canonical selectivity vector.
    std::vector<uint64_t> a = *dist;
    std::vector<uint64_t> b = map->values();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << method;
  }
}

TEST(DistributionTest, RejectsMismatchedSpaces) {
  Graph g = SmallGraph();
  auto map_small = ComputeSelectivities(g, 2);
  ASSERT_TRUE(map_small.ok());
  auto ordering = MakeOrdering("num-alph", g, 3);
  ASSERT_TRUE(ordering.ok());
  EXPECT_FALSE(BuildDistribution(*map_small, **ordering).ok());
}

TEST(DistributionTest, ProfileBasics) {
  DistributionProfile p = ProfileDistribution({0, 4, 4, 0});
  EXPECT_EQ(p.n, 4u);
  EXPECT_EQ(p.total, 8u);
  EXPECT_EQ(p.max_value, 4u);
  EXPECT_EQ(p.num_zero, 2u);
  EXPECT_DOUBLE_EQ(p.mean, 2.0);
  EXPECT_DOUBLE_EQ(p.variance, 4.0);
  EXPECT_DOUBLE_EQ(p.total_variation, 4.0 + 0.0 + 4.0);
}

TEST(DistributionTest, IdealMinimizesTotalVariation) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 3);
  ASSERT_TRUE(map.ok());
  IdealOrdering ideal(*map);
  auto ideal_dist = BuildDistribution(*map, ideal);
  ASSERT_TRUE(ideal_dist.ok());
  double ideal_tv = ProfileDistribution(*ideal_dist).total_variation;
  for (const std::string& method : PaperOrderingNames()) {
    auto ordering = MakeOrdering(method, g, 3);
    ASSERT_TRUE(ordering.ok());
    auto dist = BuildDistribution(*map, **ordering);
    ASSERT_TRUE(dist.ok());
    EXPECT_GE(ProfileDistribution(*dist).total_variation, ideal_tv) << method;
  }
}

TEST(WorkloadTest, AllPathsCoversSpace) {
  PathSpace space(3, 2);
  auto paths = AllPathsWorkload(space);
  EXPECT_EQ(paths.size(), 12u);
  for (size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(space.CanonicalIndex(paths[i]), i);
  }
}

TEST(WorkloadTest, SampledIsDeterministicPerSeed) {
  PathSpace space(4, 3);
  auto a = SampledWorkload(space, 50, 9);
  auto b = SampledWorkload(space, 50, 9);
  auto c = SampledWorkload(space, 50, 10);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  EXPECT_FALSE(std::equal(a.begin(), a.end(), c.begin()));
}

TEST(WorkloadTest, NonEmptyOnlyPositive) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 3);
  ASSERT_TRUE(map.ok());
  auto paths = NonEmptyWorkload(*map);
  EXPECT_EQ(paths.size(), map->CountNonZero());
  for (const auto& p : paths) EXPECT_GT(map->Get(p), 0u);
}

TEST(WorkloadTest, FixedLength) {
  PathSpace space(3, 3);
  auto paths = FixedLengthWorkload(space, 2);
  EXPECT_EQ(paths.size(), 9u);
  for (const auto& p : paths) EXPECT_EQ(p.length(), 2u);
}

TEST(PathHistogramTest, EndToEndEstimates) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 3);
  ASSERT_TRUE(map.ok());
  auto ordering = MakeOrdering("sum-based", g, 3);
  ASSERT_TRUE(ordering.ok());
  auto estimator = PathHistogram::Build(*map, std::move(*ordering),
                                        HistogramType::kVOptimal, 8);
  ASSERT_TRUE(estimator.ok());
  EXPECT_EQ(estimator->histogram().num_buckets(), 8u);
  // Estimates are non-negative and bounded by max frequency.
  uint64_t max_f = 0;
  for (uint64_t v : map->values()) max_f = std::max(max_f, v);
  PathSpace space(g.num_labels(), 3);
  space.ForEach([&](const LabelPath& p) {
    double e = estimator->Estimate(p);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, static_cast<double>(max_f));
  });
  EXPECT_NE(estimator->Describe().find("sum-based/v-optimal(8)"),
            std::string::npos);
}

TEST(PathHistogramTest, MaxBucketsGiveExactEstimates) {
  // One bucket per domain position -> the estimator degenerates to the
  // exact selectivity table.
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 2);
  ASSERT_TRUE(map.ok());
  auto ordering = MakeOrdering("num-alph", g, 2);
  ASSERT_TRUE(ordering.ok());
  uint64_t n = (*ordering)->size();
  auto estimator = PathHistogram::Build(*map, std::move(*ordering),
                                        HistogramType::kEquiWidth, n);
  ASSERT_TRUE(estimator.ok());
  PathSpace space(g.num_labels(), 2);
  space.ForEach([&](const LabelPath& p) {
    EXPECT_DOUBLE_EQ(estimator->Estimate(p),
                     static_cast<double>(map->Get(p)));
  });
}

TEST(ExperimentTest, BetaSweepHalves) {
  auto betas = BetaSweep(55986, 7);
  ASSERT_EQ(betas.size(), 7u);
  EXPECT_EQ(betas[0], 27993u);
  EXPECT_EQ(betas[1], 13996u);
  EXPECT_EQ(betas[6], 437u);
  EXPECT_TRUE(BetaSweep(1, 3).empty());
}

TEST(ExperimentTest, MeasureAccuracyRuns) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 3);
  ASSERT_TRUE(map.ok());
  auto result = MeasureAccuracy(g, *map, "sum-based", 3, 8,
                                HistogramType::kVOptimal);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ordering, "sum-based");
  EXPECT_EQ(result->errors.num_queries, PathSpace(3, 3).size());
  EXPECT_GE(result->errors.mean_abs_error, 0.0);
  EXPECT_LE(result->errors.mean_abs_error, 1.0);
}

TEST(ExperimentTest, PerfectWithMaxBuckets) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 2);
  ASSERT_TRUE(map.ok());
  uint64_t n = PathSpace(3, 2).size();
  auto result =
      MeasureAccuracy(g, *map, "num-card", 2, n, HistogramType::kVOptimal);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->errors.mean_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(result->errors.exact_fraction, 1.0);
}

TEST(ExperimentTest, IdealBeatsOrEqualsOthersInSse) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 3);
  ASSERT_TRUE(map.ok());
  auto ideal = MeasureAccuracy(g, *map, "ideal", 3, 6,
                               HistogramType::kVOptimalExact);
  ASSERT_TRUE(ideal.ok());
  for (const std::string& method : PaperOrderingNames()) {
    auto r = MeasureAccuracy(g, *map, method, 3, 6,
                             HistogramType::kVOptimalExact);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r->sse, ideal->sse - 1e-9) << method;
  }
}

TEST(ExperimentTest, MeasureEstimationTimeRuns) {
  Graph g = SmallGraph();
  auto map = ComputeSelectivities(g, 2);
  ASSERT_TRUE(map.ok());
  auto result = MeasureEstimationTime(g, *map, "lex-card", 2, 4,
                                      HistogramType::kVOptimal, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->calls, 3u * PathSpace(3, 2).size());
  EXPECT_GT(result->avg_estimate_us, 0.0);
}

TEST(ReportTableTest, AlignsAndCounts) {
  ReportTable table({"col", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "2"});
  EXPECT_EQ(table.num_rows(), 2u);
  std::string text = table.ToString();
  EXPECT_NE(text.find("col"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(ReportTableTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
  EXPECT_EQ(FormatDouble(1234567.0, 3), "1.23e+06");
}

}  // namespace
}  // namespace pathest
