// End-to-end tests of online maintenance through the serve daemon
// (serve/server.h + maint/online_maintenance.h): the update/compact
// protocol commands, fsync-before-ack journaling, incremental refresh
// published through the atomic snapshot swap, journal replay across
// daemon restarts, quarantine of a corrupted journal (degraded serving),
// and the maintenance torture test — concurrent estimate clients racing
// an update stream, where every response must be bit-identical to the
// serial oracle of SOME applied prefix of the updates, then a restart
// must recover the exact final state.
//
// Also here: the retrying client (serve/client.h CallWithRetry) against a
// scripted flaky mock server — retriable errors and transport failures
// retry with backoff, fatal errors and "ok" return immediately.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialize.h"
#include "graph/graph_io.h"
#include "maint/delta_journal.h"
#include "maint/incremental.h"
#include "ordering/factory.h"
#include "path/label_path.h"
#include "path/selectivity.h"
#include "serve/client.h"
#include "serve/server.h"
#include "test_util.h"
#include "util/fault_injection.h"

namespace pathest {
namespace serve {
namespace {

using testing_util::SmallGraph;

// ---------------------------------------------------------------------------
// ClassifyResponse units (no sockets).

TEST(ClassifyResponseTest, TaxonomyMatchesProtocol) {
  EXPECT_EQ(ClassifyResponse("ok"), ResponseClass::kOk);
  EXPECT_EQ(ClassifyResponse("ok 1.5 2.5"), ResponseClass::kOk);
  EXPECT_EQ(ClassifyResponse("ok journaled=2 pending=2"), ResponseClass::kOk);
  EXPECT_EQ(ClassifyResponse("err ResourceExhausted retriable queue full"),
            ResponseClass::kRetriableError);
  EXPECT_EQ(ClassifyResponse("err Unavailable retriable draining"),
            ResponseClass::kRetriableError);
  EXPECT_EQ(ClassifyResponse("err NotFound fatal no such entry"),
            ResponseClass::kFatalError);
  // Garbage is never retried.
  EXPECT_EQ(ClassifyResponse(""), ResponseClass::kFatalError);
  EXPECT_EQ(ClassifyResponse("okay"), ResponseClass::kFatalError);
  EXPECT_EQ(ClassifyResponse("err"), ResponseClass::kFatalError);
  EXPECT_EQ(ClassifyResponse("err NotFound"), ResponseClass::kFatalError);
  EXPECT_EQ(ClassifyResponse("err NotFound retriablefatal x"),
            ResponseClass::kFatalError);
}

// ---------------------------------------------------------------------------
// A scripted flaky server: one connection per script entry.
//   'R' -> answer a retriable error        'F' -> answer a fatal error
//   'C' -> close without answering          'O' -> answer "ok done"
class FlakyMockServer {
 public:
  FlakyMockServer(std::string socket_path, std::string script)
      : socket_path_(std::move(socket_path)), script_(std::move(script)) {
    auto listener = ListenUnixSocket(socket_path_, 8);
    PATHEST_CHECK(listener.ok(), "mock listen failed");
    listener_ = std::move(*listener);
    thread_ = std::thread([this] { Run(); });
  }

  ~FlakyMockServer() {
    ::shutdown(listener_.get(), SHUT_RDWR);
    listener_.reset();
    thread_.join();
  }

  size_t connections() const { return served_.load(); }

 private:
  void Run() {
    for (size_t i = 0; i < script_.size(); ++i) {
      int fd = ::accept(listener_.get(), nullptr, nullptr);
      if (fd < 0) return;  // torn down
      UniqueFd conn(fd);
      served_.fetch_add(1);
      std::string line;
      LineReader reader(conn.get(), /*idle_timeout_ms=*/2000, 1 << 20);
      if (reader.ReadLine(&line) != ReadLineResult::kLine) continue;
      switch (script_[i]) {
        case 'R':
          SendAll(conn.get(), "err Unavailable retriable mock busy\n");
          break;
        case 'F':
          SendAll(conn.get(), "err NotFound fatal mock says no\n");
          break;
        case 'O':
          SendAll(conn.get(), "ok done\n");
          break;
        case 'C':
        default:
          break;  // close without answering: transport failure
      }
    }
  }

  std::string socket_path_;
  std::string script_;
  UniqueFd listener_;
  std::thread thread_;
  std::atomic<size_t> served_{0};
};

class RetryTest : public ::testing::Test {
 protected:
  RetryTest() {
    static std::atomic<int> counter{0};
    root_ = std::filesystem::temp_directory_path() /
            ("pathest_retry_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(root_);
    sock_ = (root_ / "m.sock").string();
  }
  ~RetryTest() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  // Fast backoff so the whole suite stays sub-second.
  static RetryOptions FastRetry(size_t attempts) {
    RetryOptions options;
    options.max_attempts = attempts;
    options.initial_backoff_ms = 1;
    options.max_backoff_ms = 4;
    options.response_timeout_ms = 2000;
    return options;
  }

  std::filesystem::path root_;
  std::string sock_;
};

TEST_F(RetryTest, RetriesThroughRetriableErrorsToSuccess) {
  FlakyMockServer mock(sock_, "RRO");
  auto resp = CallWithRetry(sock_, "anything", FastRetry(4));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(*resp, "ok done");
  EXPECT_EQ(mock.connections(), 3u);
}

TEST_F(RetryTest, RetriesThroughTransportFailuresToSuccess) {
  FlakyMockServer mock(sock_, "CCO");
  auto resp = CallWithRetry(sock_, "anything", FastRetry(4));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(*resp, "ok done");
  EXPECT_EQ(mock.connections(), 3u);
}

TEST_F(RetryTest, FatalErrorReturnsImmediatelyWithoutRetry) {
  FlakyMockServer mock(sock_, "FO");
  auto resp = CallWithRetry(sock_, "anything", FastRetry(5));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, "err NotFound fatal mock says no");
  EXPECT_EQ(mock.connections(), 1u);  // the "O" was never consumed
}

TEST_F(RetryTest, ExhaustionReturnsTheLastRetriableLine) {
  FlakyMockServer mock(sock_, "RRR");
  auto resp = CallWithRetry(sock_, "anything", FastRetry(3));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, "err Unavailable retriable mock busy");
  EXPECT_EQ(mock.connections(), 3u);  // capped: exactly max_attempts dials
}

TEST_F(RetryTest, NoListenerYieldsTransportStatusAfterCappedAttempts) {
  auto resp = CallWithRetry(sock_, "anything", FastRetry(3));
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// Maintenance-enabled server fixture.

class MaintServeTest : public ::testing::Test {
 protected:
  MaintServeTest() : graph_(SmallGraph()) {
    static std::atomic<int> counter{0};
    root_ = std::filesystem::temp_directory_path() /
            ("pathest_maint_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    catalog_ = root_ / "cat";
    std::filesystem::create_directories(catalog_);

    // The graph file the daemon bootstraps its maintenance base from.
    graph_path_ = (root_ / "g.graph").string();
    std::ofstream out(graph_path_);
    PATHEST_CHECK(WriteGraphText(graph_, &out).ok(), "graph write failed");
    out.close();

    // One catalog entry; its recovered config (ordering, type, beta, k)
    // is what maintenance re-persists after every refresh.
    auto truth = ComputeSelectivities(graph_, 3);
    PATHEST_CHECK(truth.ok(), "selectivities failed");
    auto ordering =
        MakeOrderingWithSelectivities("sum-based", graph_, 3, *truth);
    PATHEST_CHECK(ordering.ok(), "ordering failed");
    auto est = PathHistogram::Build(*truth, std::move(*ordering),
                                    HistogramType::kVOptimal, 6);
    PATHEST_CHECK(est.ok(), "estimator failed");
    PATHEST_CHECK(SavePathHistogram(*est, graph_,
                                    (catalog_ / "alpha.stats").string(),
                                    CatalogFormat::kBinary)
                      .ok(),
                  "save failed");
  }

  ~MaintServeTest() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  ServeOptions MaintOptions() {
    ServeOptions options;
    options.socket_path = (root_ / "s.sock").string();
    options.catalog_dir = catalog_.string();
    options.num_workers = 2;
    options.queue_capacity = 16;
    options.graph_path = graph_path_;
    return options;
  }

  ServeClient Connect(const ServeServer& server) {
    auto client = ServeClient::Connect(server.options().socket_path);
    PATHEST_CHECK(client.ok(), "client connect failed");
    return std::move(*client);
  }

  // The serial oracle: the exact "estimate alpha <paths>" response a
  // correct server must produce once `deltas` are applied — a FULL
  // rebuild on the patched graph, persisted and reloaded through the
  // same binary round-trip the daemon uses.
  std::string Oracle(const std::vector<maint::EdgeDelta>& deltas,
                     const std::vector<std::string>& paths) {
    auto patched = maint::PatchGraph(graph_, deltas);
    PATHEST_CHECK(patched.ok(), "oracle patch failed");
    auto full = ComputeSelectivities(*patched, 3);
    PATHEST_CHECK(full.ok(), "oracle selectivities failed");
    auto ordering =
        MakeOrderingWithSelectivities("sum-based", *patched, 3, *full);
    PATHEST_CHECK(ordering.ok(), "oracle ordering failed");
    auto est = PathHistogram::Build(*full, std::move(*ordering),
                                    HistogramType::kVOptimal, 6);
    PATHEST_CHECK(est.ok(), "oracle estimator failed");
    const std::string file = (root_ / "oracle.stats").string();
    PATHEST_CHECK(SavePathHistogram(*est, *patched, file,
                                    CatalogFormat::kBinary)
                      .ok(),
                  "oracle save failed");
    auto loaded = LoadPathHistogram(file);
    PATHEST_CHECK(loaded.ok(), "oracle load failed");
    Estimator serving(loaded->estimator);
    RankScratch scratch;
    scratch.Reserve(serving.num_labels());
    std::string out = "ok";
    for (const std::string& text : paths) {
      auto path = LabelPath::Parse(text, loaded->labels);
      PATHEST_CHECK(path.ok(), "oracle path parse failed");
      out += ' ';
      AppendEstimateValue(&out, serving.Estimate(*path, scratch));
    }
    return out;
  }

  Graph graph_;
  std::filesystem::path root_;
  std::filesystem::path catalog_;
  std::string graph_path_;
};

TEST_F(MaintServeTest, UpdateWithoutMaintenanceIsFatal) {
  ServeOptions options = MaintOptions();
  options.graph_path.clear();  // maintenance off
  ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = Connect(server);
  auto resp = client.Call("update add 0 3 a");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->rfind("err InvalidArgument fatal ", 0), 0u) << *resp;
  resp = client.Call("compact");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->rfind("err InvalidArgument fatal ", 0), 0u) << *resp;
  ASSERT_TRUE(client.Call("shutdown").ok());
  server.Wait();
}

TEST_F(MaintServeTest, UpdateAppliesAndServesTheIncrementalStatistics) {
  ServeServer server(MaintOptions());
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = Connect(server);

  const std::vector<std::string> paths = {"a", "a/b", "a/b/c", "c"};
  // Before any update the server serves the seeded entry.
  auto before = client.Call("estimate alpha a a/b a/b/c c");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, Oracle({}, paths));

  // A waited update batch: both an add and a remove, acked after apply.
  auto resp = client.Call("update wait=1 add 2 0 a remove 3 0 c");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->rfind("ok applied=2 epoch=", 0), 0u) << *resp;

  const LabelId a = *graph_.labels().Find("a");
  const LabelId c = *graph_.labels().Find("c");
  std::vector<maint::EdgeDelta> deltas = {{true, 2, 0, a}, {false, 3, 0, c}};
  auto after = client.Call("estimate alpha a a/b a/b/c c");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, Oracle(deltas, paths));
  EXPECT_NE(*after, *before);  // the update was observable

  // Validation taxonomy.
  auto bad = client.Call("update add 0 3 nosuchlabel");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->rfind("err NotFound fatal ", 0), 0u) << *bad;
  bad = client.Call("update add 0 3");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->rfind("err InvalidArgument fatal ", 0), 0u) << *bad;
  bad = client.Call("update add 99999999999 3 a");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->rfind("err InvalidArgument fatal ", 0), 0u) << *bad;
  bad = client.Call("update frobnicate 0 3 a");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->rfind("err InvalidArgument fatal ", 0), 0u) << *bad;

  // Stats surfaces the maintenance counters and state.
  auto stats = client.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"maintenance\":{\"enabled\":true"),
            std::string::npos)
      << *stats;
  EXPECT_NE(stats->find("\"updates_journaled\":2"), std::string::npos);
  EXPECT_NE(stats->find("\"incremental_refreshes\":"), std::string::npos);
  EXPECT_NE(stats->find("\"age_s\":"), std::string::npos);
  EXPECT_NE(stats->find("\"quarantined_journals\":0"), std::string::npos);

  ASSERT_TRUE(client.Call("shutdown").ok());
  server.Wait();
  EXPECT_EQ(server.counters().updates_journaled.load(), 2u);
  EXPECT_GE(server.counters().incremental_refreshes.load(), 1u);
}

TEST_F(MaintServeTest, FireAndForgetUpdatesApplyAsynchronously) {
  ServeServer server(MaintOptions());
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = Connect(server);

  auto resp = client.Call("update add 2 0 a");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->rfind("ok journaled=1 pending=", 0), 0u) << *resp;

  // A waited no-op update is a sync barrier: once it applies, everything
  // journaled before it has applied too (single FIFO refresh queue).
  resp = client.Call("update wait=1 add 2 0 a");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->rfind("ok applied=1 ", 0), 0u) << *resp;

  const LabelId a = *graph_.labels().Find("a");
  auto est = client.Call("estimate alpha a a/b");
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, Oracle({{true, 2, 0, a}}, {"a", "a/b"}));

  ASSERT_TRUE(client.Call("shutdown").ok());
  server.Wait();
}

TEST_F(MaintServeTest, RestartReplaysAcknowledgedButUnappliedRecords) {
  // Phase 1: a daemon applies one update, then shuts down cleanly.
  const LabelId a = *graph_.labels().Find("a");
  const LabelId b = *graph_.labels().Find("b");
  {
    ServeServer server(MaintOptions());
    ASSERT_TRUE(server.Start().ok());
    ServeClient client = Connect(server);
    auto resp = client.Call("update wait=1 add 2 0 a");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->rfind("ok applied=", 0), 0u) << *resp;
    ASSERT_TRUE(client.Call("shutdown").ok());
    server.Wait();
  }

  // Phase 2: simulate "acknowledged but crashed before refresh" — append
  // records straight into the journal, exactly the bytes a daemon fsyncs
  // before acking, with no snapshot rebuild behind them.
  {
    maint::DeltaJournalWriter writer;
    ASSERT_TRUE(
        writer.Open((catalog_ / "maint" / "deltas.journal").string()).ok());
    ASSERT_TRUE(writer
                    .AppendBatch({maint::DeltaRecord::AddEdge(3, 1, b),
                                  maint::DeltaRecord::RemoveEdge(0, 2, a)})
                    .ok());
    writer.Close();
  }

  // Phase 3: a fresh daemon must replay BOTH the applied and the
  // crash-stranded records at startup and serve their combined state.
  ServeServer server(MaintOptions());
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = Connect(server);
  std::vector<maint::EdgeDelta> all = {
      {true, 2, 0, a}, {true, 3, 1, b}, {false, 0, 2, a}};
  auto est = client.Call("estimate alpha a a/b a/b/c c");
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, Oracle(all, {"a", "a/b", "a/b/c", "c"}));
  EXPECT_GE(server.counters().journal_replayed_records.load(), 2u);

  auto stats = client.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"type\":\"recovery\""), std::string::npos)
      << *stats;

  ASSERT_TRUE(client.Call("shutdown").ok());
  server.Wait();
}

TEST_F(MaintServeTest, CompactFoldsTheJournalAndStateSurvivesRestart) {
  const LabelId a = *graph_.labels().Find("a");
  {
    ServeServer server(MaintOptions());
    ASSERT_TRUE(server.Start().ok());
    ServeClient client = Connect(server);
    auto resp = client.Call("update wait=1 add 2 0 a");
    ASSERT_TRUE(resp.ok());
    resp = client.Call("compact");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->rfind("ok compacted epoch=", 0), 0u) << *resp;
    ASSERT_TRUE(client.Call("shutdown").ok());
    server.Wait();
  }
  // After compaction the journal holds only the marker...
  auto scan = maint::ScanDeltaJournal(
      (catalog_ / "maint" / "deltas.journal").string());
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  size_t edges = 0;
  for (const auto& rec : scan->records) {
    if (rec.is_edge()) ++edges;
  }
  EXPECT_EQ(edges, 0u);
  // ...and a restart serves the compacted state from the new base alone.
  ServeServer server(MaintOptions());
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = Connect(server);
  auto est = client.Call("estimate alpha a a/b c");
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, Oracle({{true, 2, 0, a}}, {"a", "a/b", "c"}));
  ASSERT_TRUE(client.Call("shutdown").ok());
  server.Wait();
}

TEST_F(MaintServeTest, CorruptJournalQuarantinesAndServesDegraded) {
  // Build a journal with several applied records, then corrupt it
  // MID-FILE (valid frames after the damage) — the unrecoverable class.
  {
    ServeServer server(MaintOptions());
    ASSERT_TRUE(server.Start().ok());
    ServeClient client = Connect(server);
    ASSERT_TRUE(client.Call("update wait=1 add 2 0 a").ok());
    ASSERT_TRUE(client.Call("update wait=1 add 3 2 b").ok());
    ASSERT_TRUE(client.Call("shutdown").ok());
    server.Wait();
  }
  const std::string journal = (catalog_ / "maint" / "deltas.journal").string();
  auto bytes = ReadFileBytes(journal);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(FlipBit(&*bytes, 8 + 4, 2).ok());  // first frame's CRC field
  ASSERT_TRUE(WriteFileBytes(journal, *bytes).ok());

  // The daemon must still start: quarantine the journal, rebuild from the
  // base, and serve (degraded maintenance, healthy estimates).
  ServeServer server(MaintOptions());
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = Connect(server);
  auto health = client.Call("health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->rfind("ok serving ", 0), 0u) << *health;
  EXPECT_EQ(server.counters().quarantined_journals.load(), 1u);

  // The corrupt journal was moved aside, a fresh one opened, and the
  // served state reverted to the base (the journaled-only records were
  // unrecoverable — the documented degraded tradeoff).
  EXPECT_TRUE(std::filesystem::exists(journal + ".quarantine"));
  auto est = client.Call("estimate alpha a a/b a/b/c");
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, Oracle({}, {"a", "a/b", "a/b/c"}));
  auto stats = client.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"quarantined\":true"), std::string::npos) << *stats;

  // And updates still work on the fresh journal.
  auto resp = client.Call("update wait=1 add 2 0 a");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->rfind("ok applied=", 0), 0u) << *resp;

  ASSERT_TRUE(client.Call("shutdown").ok());
  server.Wait();
}

TEST_F(MaintServeTest, TortureConcurrentEstimatesAgainstUpdateStreamAndRestart) {
  // The maintenance torture test. An update stream applies deltas one
  // waited batch at a time while estimator threads hammer the same entry.
  // Invariants:
  //   (1) every estimate response is bit-identical to the serial oracle
  //       of SOME applied prefix of the update stream (atomic snapshot
  //       pinning: never a torn mix, never a partial refresh);
  //   (2) after a daemon restart, estimates equal the FINAL prefix's
  //       oracle exactly (nothing acknowledged was lost).
  const LabelId a = *graph_.labels().Find("a");
  const LabelId b = *graph_.labels().Find("b");
  const LabelId c = *graph_.labels().Find("c");
  const std::vector<maint::EdgeDelta> stream = {
      {true, 2, 0, a},  {true, 3, 2, b},  {false, 3, 0, c},
      {true, 4, 5, c},  {false, 0, 1, a}, {true, 5, 0, a},
      {true, 0, 4, b},  {false, 2, 3, b}, {true, 6, 7, c},
      {true, 7, 0, a},
  };
  const std::vector<std::string> paths = {"a", "a/b", "b/c", "a/b/c", "c"};
  const std::string query = "estimate alpha a a/b b/c a/b/c c";

  // Precompute the oracle of every prefix (0..N deltas applied).
  std::vector<std::string> prefix_oracles;
  for (size_t n = 0; n <= stream.size(); ++n) {
    prefix_oracles.push_back(Oracle(
        std::vector<maint::EdgeDelta>(stream.begin(), stream.begin() + n),
        paths));
  }

  ServeServer server(MaintOptions());
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> done{false};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> estimates_served{0};
  std::vector<std::string> unexpected;
  std::mutex unexpected_mu;

  std::vector<std::thread> estimators;
  for (int t = 0; t < 3; ++t) {
    estimators.emplace_back([&] {
      auto client = ServeClient::Connect(server.options().socket_path);
      if (!client.ok()) return;
      while (!done.load(std::memory_order_acquire)) {
        auto resp = client->Call(query);
        if (!resp.ok()) return;  // daemon gone (shutdown race) — fine
        if (resp->rfind("err ", 0) == 0) {
          // Only retriable taxonomy errors are acceptable under load.
          if (ClassifyResponse(*resp) != ResponseClass::kRetriableError) {
            mismatches.fetch_add(1);
          }
          continue;
        }
        estimates_served.fetch_add(1);
        bool known = false;
        for (const std::string& oracle : prefix_oracles) {
          if (*resp == oracle) {
            known = true;
            break;
          }
        }
        if (!known) {
          mismatches.fetch_add(1);
          std::lock_guard<std::mutex> lock(unexpected_mu);
          if (unexpected.size() < 3) unexpected.push_back(*resp);
        }
      }
    });
  }

  {
    ServeClient updater = Connect(server);
    for (const maint::EdgeDelta& d : stream) {
      std::string req = std::string("update wait=1 ") +
                        (d.add ? "add " : "remove ") + std::to_string(d.src) +
                        ' ' + std::to_string(d.dst) + ' ' +
                        graph_.labels().Name(d.label);
      auto resp = updater.Call(req);
      ASSERT_TRUE(resp.ok());
      ASSERT_EQ(resp->rfind("ok applied=1 ", 0), 0u) << *resp;
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : estimators) t.join();

  EXPECT_EQ(mismatches.load(), 0u)
      << (unexpected.empty() ? "" : "e.g. " + unexpected[0]);
  EXPECT_GT(estimates_served.load(), 0u);

  // Final state, same daemon.
  {
    ServeClient client = Connect(server);
    auto final_est = client.Call(query);
    ASSERT_TRUE(final_est.ok());
    EXPECT_EQ(*final_est, prefix_oracles.back());
    ASSERT_TRUE(client.Call("shutdown").ok());
  }
  server.Wait();

  // Restart: the journal replays and the final state is exact.
  ServeServer reborn(MaintOptions());
  ASSERT_TRUE(reborn.Start().ok());
  ServeClient client = Connect(reborn);
  auto recovered = client.Call(query);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, prefix_oracles.back());
  ASSERT_TRUE(client.Call("shutdown").ok());
  reborn.Wait();
}

}  // namespace
}  // namespace serve
}  // namespace pathest
