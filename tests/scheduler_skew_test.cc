// Scheduler-skew coverage: a graph where one label owns >90% of the edges
// is the worst case for per-root decomposition — the monster root
// serializes the build's tail however many workers there are. The fused
// engine's depth-2 prefix tasks split that root into |L| independently
// schedulable pieces. This test asserts DETERMINISM (bit-identical maps at
// threads {1, 2, 4} for both decompositions); the wall-time comparison is
// measured and printed but NOT asserted — the CI container may have a
// single core, where no decomposition can show a parallel speedup.

#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "gen/label_assigner.h"
#include "path/selectivity.h"
#include "util/timer.h"

namespace pathest {
namespace {

// Assigns label 0 with probability `skew`, the rest uniformly.
class SkewedLabelAssigner : public LabelAssigner {
 public:
  SkewedLabelAssigner(size_t num_labels, double skew)
      : num_labels_(num_labels), skew_(skew) {}

  LabelId Assign(VertexId, VertexId, Rng* rng) override {
    if (rng->NextBool(skew_) || num_labels_ == 1) return 0;
    return static_cast<LabelId>(1 + rng->NextBounded(num_labels_ - 1));
  }
  size_t num_labels() const override { return num_labels_; }

 private:
  size_t num_labels_;
  double skew_;
};

Graph SkewedGraph(size_t num_vertices, size_t num_edges, size_t num_labels,
                  double skew, uint64_t seed) {
  SkewedLabelAssigner labels(num_labels, skew);
  ErdosRenyiParams params;
  params.num_vertices = num_vertices;
  params.num_edges = num_edges;
  params.seed = seed;
  auto g = GenerateErdosRenyi(params, &labels);
  PATHEST_CHECK(g.ok(), "skewed graph generation failed");
  return std::move(g).ValueOrDie();
}

TEST(SchedulerSkewTest, SkewedLabelDeterminismAcrossDecompositions) {
  const Graph g = SkewedGraph(400, 6000, 4, 0.93, 11);
  // The premise: one label really does own >90% of the edges.
  uint64_t total = 0;
  for (LabelId l = 0; l < g.num_labels(); ++l) {
    total += g.LabelCardinality(l);
  }
  ASSERT_GT(g.LabelCardinality(0) * 10, total * 9)
      << "label 0 owns " << g.LabelCardinality(0) << " of " << total;

  const size_t k = 4;
  SelectivityOptions serial;
  serial.strategy = ExtendStrategy::kPerLabel;
  serial.num_threads = 1;
  auto baseline = ComputeSelectivities(g, k, serial);
  ASSERT_TRUE(baseline.ok());

  for (ExtendStrategy strategy :
       {ExtendStrategy::kFused, ExtendStrategy::kPerLabel}) {
    std::printf("%-9s decomposition:", ExtendStrategyName(strategy));
    for (size_t threads : {1u, 2u, 4u}) {
      SelectivityOptions options;
      options.strategy = strategy;
      options.num_threads = threads;
      Timer timer;
      auto map = ComputeSelectivities(g, k, options);
      const double ms = timer.ElapsedMillis();
      ASSERT_TRUE(map.ok())
          << "strategy=" << ExtendStrategyName(strategy)
          << " threads=" << threads;
      // The determinism assert: bit-identical to the serial per-label map.
      EXPECT_EQ(map->values(), baseline->values())
          << "strategy=" << ExtendStrategyName(strategy)
          << " threads=" << threads;
      // Timing is informational only (a 1-core container cannot show a
      // monotone non-increasing profile): printed for humans and CI logs.
      std::printf("  threads=%zu %.1fms", threads, ms);
    }
    std::printf("\n");
  }
}

TEST(SchedulerSkewTest, PrefixTasksSplitTheMonsterRoot) {
  // With task decomposition the skewed root contributes |L| tasks whose
  // combined weight dwarfs the others — verify the fused build still
  // matches the baseline when the task count far exceeds the threads.
  const Graph g = SkewedGraph(250, 3000, 6, 0.92, 7);
  auto baseline = ComputeSelectivities(g, 3);  // fused serial (default)
  ASSERT_TRUE(baseline.ok());
  SelectivityOptions reference;
  reference.strategy = ExtendStrategy::kPerLabel;
  auto expect = ComputeSelectivities(g, 3, reference);
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(baseline->values(), expect->values());
  for (size_t threads : {3u, 4u}) {
    SelectivityOptions options;
    options.num_threads = threads;
    auto map = ComputeSelectivities(g, 3, options);
    ASSERT_TRUE(map.ok());
    EXPECT_EQ(map->values(), expect->values()) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace pathest
