// Unit tests for the combinatorial primitives behind sum-based ordering.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/combinatorics.h"

namespace pathest {
namespace {

TEST(FactorialTest, SmallValues) {
  EXPECT_EQ(Factorial(0), 1u);
  EXPECT_EQ(Factorial(1), 1u);
  EXPECT_EQ(Factorial(5), 120u);
  EXPECT_EQ(Factorial(10), 3628800u);
  EXPECT_EQ(Factorial(20), 2432902008176640000ULL);
}

TEST(BinomialTest, KnownValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(5, 0), 1u);
  EXPECT_EQ(Binomial(5, 5), 1u);
  EXPECT_EQ(Binomial(5, 2), 10u);
  EXPECT_EQ(Binomial(10, 3), 120u);
  EXPECT_EQ(Binomial(52, 5), 2598960u);
  EXPECT_EQ(Binomial(3, 7), 0u);  // k > n
}

TEST(BinomialTest, PascalIdentity) {
  for (uint64_t n = 1; n <= 30; ++n) {
    for (uint64_t k = 1; k <= n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n - 1, k - 1) + Binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CheckedArithmeticTest, InRange) {
  EXPECT_EQ(CheckedMul(1000, 1000), 1000000u);
  EXPECT_EQ(CheckedAdd(1, 2), 3u);
  EXPECT_EQ(CheckedPow(2, 10), 1024u);
  EXPECT_EQ(CheckedPow(8, 6), 262144u);
  EXPECT_EQ(CheckedPow(7, 0), 1u);
}

TEST(CheckedArithmeticTest, MulOverflowAborts) {
  EXPECT_DEATH(CheckedMul(~0ULL, 2), "overflow");
}

TEST(CheckedArithmeticTest, AddOverflowAborts) {
  EXPECT_DEATH(CheckedAdd(~0ULL, 1), "overflow");
}

TEST(CheckedArithmeticTest, PowOverflowAborts) {
  EXPECT_DEATH(CheckedPow(2, 64), "overflow");
}

// Brute-force composition counter: sequences of m values in [1, L] summing
// to `sum`.
uint64_t BruteCompositions(uint64_t sum, uint64_t m, uint64_t num_labels) {
  if (m == 0) return sum == 0 ? 1 : 0;
  uint64_t total = 0;
  for (uint64_t first = 1; first <= num_labels && first <= sum; ++first) {
    total += BruteCompositions(sum - first, m - 1, num_labels);
  }
  return total;
}

TEST(CompositionCountTest, PaperExample) {
  // Compositions of 4 into 2 parts each <= 3: (1,3), (2,2), (3,1).
  EXPECT_EQ(CompositionCount(4, 2, 3), 3u);
}

TEST(CompositionCountTest, MatchesBruteForce) {
  for (uint64_t num_labels = 1; num_labels <= 6; ++num_labels) {
    for (uint64_t m = 1; m <= 5; ++m) {
      for (uint64_t sum = 0; sum <= m * num_labels + 2; ++sum) {
        EXPECT_EQ(CompositionCount(sum, m, num_labels),
                  BruteCompositions(sum, m, num_labels))
            << "L=" << num_labels << " m=" << m << " sum=" << sum;
      }
    }
  }
}

TEST(CompositionCountTest, TotalOverSumsIsPower) {
  // Sum over all achievable summed ranks must cover every rank sequence.
  for (uint64_t num_labels = 2; num_labels <= 8; ++num_labels) {
    for (uint64_t m = 1; m <= 6; ++m) {
      uint64_t total = 0;
      for (uint64_t sum = m; sum <= m * num_labels; ++sum) {
        total += CompositionCount(sum, m, num_labels);
      }
      EXPECT_EQ(total, CheckedPow(num_labels, m));
    }
  }
}

TEST(CompositionTableTest, MatchesDirectComputation) {
  CompositionTable table(5, 4);
  for (uint64_t m = 1; m <= 4; ++m) {
    for (uint64_t sum = 0; sum <= 25; ++sum) {
      EXPECT_EQ(table.Count(sum, m), CompositionCount(sum, m, 5));
    }
  }
  EXPECT_EQ(table.Count(3, 0), 0u);
  EXPECT_EQ(table.Count(3, 9), 0u);
}

TEST(EnumeratePartitionsTest, PaperOrderSr4) {
  // ip(4, 2, 3) must yield {2,2} before {1,3} (verified against Table 2).
  auto parts = EnumeratePartitions(4, 2, 3);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], (Partition{2, 2}));
  EXPECT_EQ(parts[1], (Partition{1, 3}));
}

TEST(EnumeratePartitionsTest, PartsAreSortedAscending) {
  for (auto& p : EnumeratePartitions(12, 4, 6)) {
    EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
  }
}

TEST(EnumeratePartitionsTest, CoversAllMultisets) {
  // Every partition of `sum` into m parts in [1, max_part], exactly once.
  for (uint64_t max_part = 1; max_part <= 5; ++max_part) {
    for (uint64_t m = 1; m <= 4; ++m) {
      for (uint64_t sum = m; sum <= m * max_part; ++sum) {
        auto parts = EnumeratePartitions(sum, m, max_part);
        std::set<Partition> unique(parts.begin(), parts.end());
        EXPECT_EQ(unique.size(), parts.size()) << "duplicates";
        uint64_t perm_total = 0;
        for (const auto& p : parts) {
          EXPECT_EQ(p.size(), m);
          uint64_t s = 0;
          for (uint32_t v : p) {
            EXPECT_GE(v, 1u);
            EXPECT_LE(v, max_part);
            s += v;
          }
          EXPECT_EQ(s, sum);
          perm_total += MultisetPermutationCount(p);
        }
        // Permutations over all partitions = compositions with that sum.
        EXPECT_EQ(perm_total, CompositionCount(sum, m, max_part));
      }
    }
  }
}

TEST(EnumeratePartitionsTest, EmptyWhenInfeasible) {
  EXPECT_TRUE(EnumeratePartitions(7, 2, 3).empty());   // max sum is 6
  EXPECT_TRUE(EnumeratePartitions(1, 2, 3).empty());   // min sum is 2
  EXPECT_TRUE(EnumeratePartitions(3, 0, 3).empty());   // no parts
}

TEST(MultisetPermutationCountTest, KnownValues) {
  EXPECT_EQ(MultisetPermutationCount({}), 1u);
  EXPECT_EQ(MultisetPermutationCount({3}), 1u);
  EXPECT_EQ(MultisetPermutationCount({1, 2}), 2u);
  EXPECT_EQ(MultisetPermutationCount({2, 2}), 1u);
  EXPECT_EQ(MultisetPermutationCount({1, 1, 2}), 3u);
  EXPECT_EQ(MultisetPermutationCount({1, 2, 3, 4}), 24u);
  EXPECT_EQ(MultisetPermutationCount({1, 1, 2, 2}), 6u);
}

TEST(MultisetPermutationCountTest, UnsortedInputAccepted) {
  EXPECT_EQ(MultisetPermutationCount({2, 1, 2, 1}), 6u);
}

TEST(CompositionTableTest, CumulativeBelowMatchesLinearSum) {
  CompositionTable table(5, 4);
  for (uint64_t m = 1; m <= 4; ++m) {
    uint64_t running = 0;
    // Sweep past the table's end to exercise the saturating clamp.
    for (uint64_t sum = m; sum <= 5 * m + 3; ++sum) {
      EXPECT_EQ(table.CumulativeBelow(sum, m), running)
          << "m=" << m << " sum=" << sum;
      running += table.Count(sum, m);
    }
    EXPECT_EQ(table.CumulativeBelow(m, m), 0u);
  }
}

TEST(CompositionTableTest, SumForOffsetInvertsCumulativeBelow) {
  CompositionTable table(6, 3);
  for (uint64_t m = 1; m <= 3; ++m) {
    uint64_t total = 0;
    for (uint64_t sum = m; sum <= 6 * m; ++sum) total += table.Count(sum, m);
    for (uint64_t offset = 0; offset < total; ++offset) {
      const uint64_t sum = table.SumForOffset(offset, m);
      EXPECT_LE(table.CumulativeBelow(sum, m), offset);
      EXPECT_LT(offset, table.CumulativeBelow(sum + 1, m));
      EXPECT_GT(table.Count(sum, m), 0u);
    }
    EXPECT_DEATH(table.SumForOffset(total, m), "beyond total");
  }
}

TEST(FactorialCacheTest, MatchesFactorial) {
  FactorialCache cache(16);
  EXPECT_EQ(cache.max_n(), 16u);
  for (uint64_t n = 0; n <= 16; ++n) EXPECT_EQ(cache.Fact(n), Factorial(n));
}

TEST(FactorialCacheTest, BuildIsOverflowChecked) {
  EXPECT_DEATH(FactorialCache(21), "overflow");
}

TEST(FactorialCacheTest, LookupBeyondMaxAborts) {
  FactorialCache cache(4);
  EXPECT_DEATH(cache.Fact(5), "beyond max_n");
}

}  // namespace
}  // namespace pathest
