// Tests for histogram range queries (EstimateRange) and the estimator's
// index-range API.

#include <gtest/gtest.h>

#include "core/path_histogram.h"
#include "histogram/builders.h"
#include "ordering/factory.h"
#include "path/selectivity.h"
#include "test_util.h"
#include "util/random.h"

namespace pathest {
namespace {

TEST(EstimateRangeTest, FullRangeEqualsTotalSum) {
  std::vector<uint64_t> data = {3, 1, 4, 1, 5, 9, 2, 6};
  auto h = BuildEquiWidth(data, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->EstimateRange(0, data.size()), 31.0, 1e-9);
}

TEST(EstimateRangeTest, EmptyRangeIsZero) {
  std::vector<uint64_t> data = {3, 1, 4};
  auto h = BuildEquiWidth(data, 2);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->EstimateRange(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(h->EstimateRange(3, 3), 0.0);
}

TEST(EstimateRangeTest, ExactWhenRangeAlignsWithBuckets) {
  std::vector<uint64_t> data = {10, 20, 30, 40, 50, 60};
  auto h = Histogram::FromBoundaries(data, {2, 4});
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->EstimateRange(0, 2), 30.0);
  EXPECT_DOUBLE_EQ(h->EstimateRange(2, 4), 70.0);
  EXPECT_DOUBLE_EQ(h->EstimateRange(2, 6), 180.0);
}

TEST(EstimateRangeTest, ProRataWithinBucket) {
  std::vector<uint64_t> data = {10, 20, 30, 40};
  auto h = Histogram::FromBoundaries(data, {});  // single bucket, mean 25
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->EstimateRange(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(h->EstimateRange(1, 3), 50.0);
}

TEST(EstimateRangeTest, AdditiveOverSplits) {
  Rng rng(17);
  std::vector<uint64_t> data(200);
  for (auto& v : data) v = rng.NextBounded(100);
  auto h = BuildVOptimalGreedy(data, 16);
  ASSERT_TRUE(h.ok());
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t a = rng.NextBounded(201);
    uint64_t b = rng.NextBounded(201);
    if (a > b) std::swap(a, b);
    uint64_t mid = a + rng.NextBounded(b - a + 1);
    EXPECT_NEAR(h->EstimateRange(a, b),
                h->EstimateRange(a, mid) + h->EstimateRange(mid, b), 1e-7);
  }
}

TEST(EstimateRangeTest, MatchesPointEstimatesSummed) {
  Rng rng(23);
  std::vector<uint64_t> data(64);
  for (auto& v : data) v = rng.NextBounded(30);
  auto h = BuildEquiDepth(data, 7);
  ASSERT_TRUE(h.ok());
  for (uint64_t a = 0; a < 64; a += 5) {
    for (uint64_t b = a; b <= 64; b += 7) {
      double summed = 0.0;
      for (uint64_t i = a; i < b; ++i) summed += h->Estimate(i);
      EXPECT_NEAR(h->EstimateRange(a, b), summed, 1e-7);
    }
  }
}

TEST(EstimateRangeTest, BoundsChecked) {
  std::vector<uint64_t> data = {1, 2, 3};
  auto h = BuildEquiWidth(data, 2);
  ASSERT_TRUE(h.ok());
  EXPECT_DEATH(h->EstimateRange(2, 1), "begin");
  EXPECT_DEATH(h->EstimateRange(0, 4), "out of domain");
}

TEST(PathHistogramRangeTest, IdealOrderingRangeQueryIsSelectivityQuantile) {
  // Under the ideal ordering the domain is sorted by f; a prefix range
  // estimates the total mass of the lowest-selectivity paths.
  Graph g = testing_util::SmallGraph();
  auto map = ComputeSelectivities(g, 3);
  ASSERT_TRUE(map.ok());
  auto ideal = MakeOrderingWithSelectivities("ideal", g, 3, *map);
  ASSERT_TRUE(ideal.ok());
  uint64_t n = (*ideal)->size();
  auto est = PathHistogram::Build(*map, std::move(*ideal),
                                  HistogramType::kVOptimal, n);
  ASSERT_TRUE(est.ok());
  // With beta == n the estimate is exact, so the full range equals the true
  // total mass.
  EXPECT_NEAR(est->EstimateIndexRange(0, n),
              static_cast<double>(map->Total()), 1e-6);
}

}  // namespace
}  // namespace pathest
