// Determinism and failure-semantics tests for the parallel selectivity
// engine: the SelectivityMap must be bit-identical for every num_threads
// value, and the max_pairs_per_prefix guard must report the same status
// under parallelism as it does serially.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "gen/label_assigner.h"
#include "path/selectivity.h"
#include "test_util.h"

namespace pathest {
namespace {

Graph ForestFireGraph(size_t num_vertices, size_t num_labels, uint64_t seed) {
  UniformLabelAssigner labels(num_labels);
  ForestFireParams params;
  params.num_vertices = num_vertices;
  params.seed = seed;
  auto g = GenerateForestFire(params, &labels);
  PATHEST_CHECK(g.ok(), "forest fire generation failed");
  return std::move(g).ValueOrDie();
}

Graph ErdosRenyiGraph(size_t num_vertices, size_t num_edges,
                      size_t num_labels, uint64_t seed) {
  UniformLabelAssigner labels(num_labels);
  ErdosRenyiParams params;
  params.num_vertices = num_vertices;
  params.num_edges = num_edges;
  params.seed = seed;
  auto g = GenerateErdosRenyi(params, &labels);
  PATHEST_CHECK(g.ok(), "Erdős–Rényi generation failed");
  return std::move(g).ValueOrDie();
}

// Runs ComputeSelectivities at every thread count and asserts the maps are
// bit-identical to the serial baseline.
void ExpectThreadCountInvariance(const Graph& g, size_t k) {
  SelectivityOptions serial;
  serial.num_threads = 1;
  auto baseline = ComputeSelectivities(g, k, serial);
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : {2u, 3u, 4u, 0u}) {  // 0 = hardware concurrency
    SelectivityOptions options;
    options.num_threads = threads;
    auto map = ComputeSelectivities(g, k, options);
    ASSERT_TRUE(map.ok()) << "threads=" << threads;
    EXPECT_EQ(map->values(), baseline->values()) << "threads=" << threads;
  }
}

TEST(ParallelSelectivityTest, DeterministicOnForestFire) {
  ExpectThreadCountInvariance(ForestFireGraph(400, 5, 7), /*k=*/4);
}

TEST(ParallelSelectivityTest, DeterministicOnForestFireSecondSeed) {
  ExpectThreadCountInvariance(ForestFireGraph(250, 4, 99), /*k=*/5);
}

TEST(ParallelSelectivityTest, DeterministicOnErdosRenyi) {
  ExpectThreadCountInvariance(ErdosRenyiGraph(200, 800, 5, 11), /*k=*/4);
}

TEST(ParallelSelectivityTest, DeterministicOnErdosRenyiDense) {
  // Denser graph: larger pair sets stress the scratch reuse.
  ExpectThreadCountInvariance(ErdosRenyiGraph(80, 1200, 3, 5), /*k=*/5);
}

TEST(ParallelSelectivityTest, MaxPairsAbortMatchesSerialStatus) {
  Graph g = ErdosRenyiGraph(200, 800, 5, 11);
  SelectivityOptions serial;
  serial.num_threads = 1;
  serial.max_pairs_per_prefix = 50;  // far below the level-1 pair sets
  auto serial_result = ComputeSelectivities(g, 4, serial);
  ASSERT_FALSE(serial_result.ok());
  ASSERT_EQ(serial_result.status().code(), StatusCode::kResourceExhausted);

  for (size_t threads : {2u, 4u, 0u}) {
    SelectivityOptions options = serial;
    options.num_threads = threads;
    auto result = ComputeSelectivities(g, 4, options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    // The lowest-id failing root wins regardless of scheduling, so the
    // message (which names the failing path) is deterministic too.
    EXPECT_EQ(result.status().ToString(), serial_result.status().ToString())
        << "threads=" << threads;
  }
}

TEST(ParallelSelectivityTest, MaxPairsAbortDeepInTreeUnderParallelism) {
  // A guard high enough to pass level 1 but trip deeper in the DFS, so the
  // abort surfaces from inside worker threads rather than the root setup.
  Graph g = ErdosRenyiGraph(80, 1200, 3, 5);
  SelectivityOptions serial;
  serial.num_threads = 1;
  uint64_t level1_max = 0;
  for (LabelId l = 0; l < g.num_labels(); ++l) {
    auto f = EvaluatePathSelectivity(g, LabelPath{l});
    ASSERT_TRUE(f.ok());
    level1_max = std::max(level1_max, *f);
  }
  serial.max_pairs_per_prefix = level1_max;  // level 1 passes, level 2 trips
  auto serial_result = ComputeSelectivities(g, 4, serial);
  ASSERT_FALSE(serial_result.ok());

  SelectivityOptions parallel = serial;
  parallel.num_threads = 4;
  auto parallel_result = ComputeSelectivities(g, 4, parallel);
  ASSERT_FALSE(parallel_result.ok());
  EXPECT_EQ(parallel_result.status().ToString(),
            serial_result.status().ToString());
}

TEST(ParallelSelectivityTest, ProgressAndLabelTimeFireOncePerRoot) {
  Graph g = ForestFireGraph(300, 6, 3);
  SelectivityOptions options;
  options.num_threads = 4;
  // The engine serializes both callbacks behind one mutex (documented in
  // selectivity.h), so plain containers need no locking here.
  std::multiset<LabelId> progress_roots;
  std::vector<double> times;
  options.progress = [&](LabelId root) { progress_roots.insert(root); };
  options.label_time = [&](LabelId, double ms) {
    EXPECT_GE(ms, 0.0);
    times.push_back(ms);
  };
  auto map = ComputeSelectivities(g, 3, options);
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(progress_roots.size(), g.num_labels());
  for (LabelId l = 0; l < g.num_labels(); ++l) {
    EXPECT_EQ(progress_roots.count(l), 1u) << "root " << l;
  }
  EXPECT_EQ(times.size(), g.num_labels());
}

TEST(ParallelSelectivityTest, ThreadCountAboveLabelCountIsClamped) {
  Graph g = testing_util::SmallGraph();  // 3 labels
  SelectivityOptions options;
  options.num_threads = 64;  // clamped to |L| internally
  auto map = ComputeSelectivities(g, 3, options);
  ASSERT_TRUE(map.ok());
  auto baseline = ComputeSelectivities(g, 3);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(map->values(), baseline->values());
}

}  // namespace
}  // namespace pathest
