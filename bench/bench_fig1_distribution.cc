// Reproduces the paper's Figure 1: the data distribution of the Moreno
// Health dataset over label paths with k = 3 (258 domain positions under the
// num-alph ordering shown in the figure), overlaid with an equi-width
// histogram.
//
// Output: a per-position CSV (fig1_distribution.csv) with the path name,
// exact selectivity, and the equi-width bucket estimate, plus a coarse ASCII
// rendering and summary statistics.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/distribution.h"
#include "core/path_histogram.h"
#include "core/report.h"
#include "ordering/factory.h"

namespace pathest {
namespace {

int Run() {
  const size_t k = bench::SizeFromEnv("PATHEST_K", 3);
  const size_t beta = bench::SizeFromEnv("PATHEST_BETA", 16);

  Graph graph = bench::BuildBenchDataset(DatasetId::kMorenoHealth);
  SelectivityMap map = bench::ComputeWithProgress(graph, k, "moreno");

  auto ordering = MakeOrdering("num-alph", graph, k);
  bench::DieIf(ordering.status(), "ordering");
  auto dist = BuildDistribution(map, **ordering);
  bench::DieIf(dist.status(), "distribution");

  auto estimator = PathHistogram::Build(map, std::move(*ordering),
                                        HistogramType::kEquiWidth, beta);
  bench::DieIf(estimator.status(), "histogram");

  ReportTable csv({"index", "label_path", "selectivity", "equi_width_est"});
  const Ordering& ord = estimator->ordering();
  for (uint64_t i = 0; i < dist->size(); ++i) {
    LabelPath p = ord.Unrank(i);
    csv.AddRow({std::to_string(i), p.ToString(graph.labels()),
                std::to_string((*dist)[i]),
                FormatDouble(estimator->histogram().Estimate(i), 6)});
  }
  bench::DieIf(csv.WriteCsv("fig1_distribution.csv"), "csv");

  DistributionProfile profile = ProfileDistribution(*dist);
  std::printf("Figure 1: Moreno Health distribution, k=%zu (num-alph "
              "ordering), equi-width beta=%zu\n\n", k, beta);
  std::printf("domain size |L_k| = %llu, total pairs = %llu, max f = %llu, "
              "zero-selectivity paths = %llu\n\n",
              static_cast<unsigned long long>(profile.n),
              static_cast<unsigned long long>(profile.total),
              static_cast<unsigned long long>(profile.max_value),
              static_cast<unsigned long long>(profile.num_zero));

  // Coarse ASCII rendering: 64 columns, log-ish vertical scale of 16 rows.
  const size_t kCols = 64;
  const size_t kRows = 16;
  std::vector<uint64_t> col_max(kCols, 0);
  for (uint64_t i = 0; i < dist->size(); ++i) {
    size_t c = static_cast<size_t>(i * kCols / dist->size());
    col_max[c] = std::max(col_max[c], (*dist)[i]);
  }
  uint64_t peak = std::max<uint64_t>(profile.max_value, 1);
  for (size_t r = kRows; r-- > 0;) {
    std::string line;
    for (size_t c = 0; c < kCols; ++c) {
      double frac = static_cast<double>(col_max[c]) / peak;
      line += (frac * kRows > r) ? '#' : ' ';
    }
    std::printf("|%s|\n", line.c_str());
  }
  std::printf("(columns = domain positions in num-alph order; height = max "
              "f within column)\n\n");
  std::printf("wrote fig1_distribution.csv (%zu rows)\n", csv.num_rows());
  return 0;
}

}  // namespace
}  // namespace pathest

int main() { return pathest::Run(); }
