// bench_incremental_refresh: incremental statistics rebuild
// (maint/incremental.h) versus a full ComputeSelectivities on the patched
// graph — the number that makes "re-run only the dirtied prefix tasks" a
// measurement instead of a slogan. For each delta-batch size the bench
// patches a dbpedia-like base graph, times both rebuilds (which are
// bit-identical by contract; verified here every row), and reports the
// speedup plus the dirtiness accounting (touched roots, dirty tasks,
// cone size) that explains it. Small batches should re-run a fraction of
// the |L|² task grid; as the batch grows the dirty set saturates and the
// speedup decays toward 1 — both regimes belong in the output.
//
// --json[=path] writes one JSON object (default
// BENCH_incremental_refresh.json) with per-row times and dirtiness.

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "maint/incremental.h"
#include "path/selectivity.h"
#include "util/timer.h"

namespace pathest {
namespace {

struct Row {
  size_t batch = 0;
  double full_ms = 0;
  double incremental_ms = 0;
  double speedup = 0;
  size_t touched_roots = 0;
  size_t total_roots = 0;
  size_t dirty_tasks = 0;
  size_t total_tasks = 0;
  size_t cone_vertices = 0;
};

// A delta batch of `size` mutations: half adds of fresh random edges,
// half removes of edges actually present (sampled via the adjacency).
std::vector<maint::EdgeDelta> MakeBatch(const Graph& graph, size_t size,
                                        uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> vertex(
      0, static_cast<uint32_t>(graph.num_vertices() - 1));
  std::uniform_int_distribution<uint32_t> label(
      0, static_cast<uint32_t>(graph.num_labels() - 1));
  std::vector<maint::EdgeDelta> deltas;
  while (deltas.size() < size) {
    if (deltas.size() % 2 == 0) {
      deltas.push_back({true, vertex(rng), vertex(rng), label(rng)});
      continue;
    }
    // Sample a present edge for removal: random (v, l) until one has
    // out-neighbors (the generated datasets are dense enough for this to
    // hit within a few probes).
    for (int probe = 0; probe < 256; ++probe) {
      const uint32_t v = vertex(rng);
      const uint32_t l = label(rng);
      auto out = graph.OutNeighbors(v, l);
      if (!out.empty()) {
        deltas.push_back({false, v, out[out.size() / 2], l});
        break;
      }
    }
    if (deltas.size() % 2 == 1) {  // all probes missed: settle for an add
      deltas.push_back({true, vertex(rng), vertex(rng), label(rng)});
    }
  }
  return deltas;
}

int Run(bool json_mode, const std::string& json_path) {
  const size_t k = bench::SizeFromEnv("PATHEST_K", 3);
  Graph graph = bench::BuildBenchDataset(DatasetId::kDbpedia);
  std::printf("graph: %zu vertices, %zu labels, k=%zu\n",
              graph.num_vertices(), graph.num_labels(), k);

  SelectivityOptions options;
  options.num_threads = bench::ThreadsFromEnv();
  SelectivityMap base = bench::ComputeWithProgress(graph, k, "base");

  std::vector<Row> rows;
  for (size_t batch : {size_t{1}, size_t{4}, size_t{16}, size_t{64},
                       size_t{256}}) {
    std::vector<maint::EdgeDelta> deltas =
        MakeBatch(graph, batch, 1000 + batch);
    auto patched = maint::PatchGraph(graph, deltas, options.num_threads);
    bench::DieIf(patched.status(), "patch");

    Timer full_timer;
    auto full = ComputeSelectivities(*patched, k, options);
    const double full_ms = full_timer.ElapsedMillis();
    bench::DieIf(full.status(), "full rebuild");

    maint::IncrementalStats stats;
    Timer inc_timer;
    auto incremental =
        maint::IncrementalSelectivities(*patched, base, deltas, options,
                                        &stats);
    const double inc_ms = inc_timer.ElapsedMillis();
    bench::DieIf(incremental.status(), "incremental rebuild");
    if (incremental->values() != full->values()) {
      std::fprintf(stderr,
                   "bench invalid: incremental != full at batch=%zu\n",
                   batch);
      return 1;
    }

    Row row;
    row.batch = batch;
    row.full_ms = full_ms;
    row.incremental_ms = inc_ms;
    row.speedup = inc_ms > 0 ? full_ms / inc_ms : 0;
    row.touched_roots = stats.touched_roots;
    row.total_roots = stats.total_roots;
    row.dirty_tasks = stats.dirty_tasks;
    row.total_tasks = stats.total_tasks;
    row.cone_vertices = stats.cone_vertices;
    rows.push_back(row);
    std::printf(
        "batch=%zu: full=%.1fms incremental=%.1fms speedup=%.1fx "
        "roots=%zu/%zu tasks=%zu/%zu cone=%zu\n",
        row.batch, row.full_ms, row.incremental_ms, row.speedup,
        row.touched_roots, row.total_roots, row.dirty_tasks, row.total_tasks,
        row.cone_vertices);
  }

  if (!json_mode) return 0;
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"incremental_refresh\",\n");
  std::fprintf(out, "  \"k\": %zu,\n", k);
  std::fprintf(out, "  \"num_vertices\": %zu,\n", graph.num_vertices());
  std::fprintf(out, "  \"num_labels\": %zu,\n", graph.num_labels());
  std::fprintf(out, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"batch\": %zu, \"full_ms\": %.2f, "
                 "\"incremental_ms\": %.2f, \"speedup\": %.2f, "
                 "\"touched_roots\": %zu, \"total_roots\": %zu, "
                 "\"dirty_tasks\": %zu, \"total_tasks\": %zu, "
                 "\"cone_vertices\": %zu}%s\n",
                 r.batch, r.full_ms, r.incremental_ms, r.speedup,
                 r.touched_roots, r.total_roots, r.dirty_tasks,
                 r.total_tasks, r.cone_vertices,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace pathest

int main(int argc, char** argv) {
  bool json_mode = false;
  std::string json_path = "BENCH_incremental_refresh.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_mode = true;
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  return pathest::Run(json_mode, json_path);
}
