// Microbenchmark M3: histogram construction — independent per-β rebuilds
// versus the shared-stats multi-β sweep engine (histogram/builders.h).
//
// For each config (a paper-scale synthetic zipf frequency sequence and a
// pipeline-derived moreno distribution) and each histogram type, this times
// the paper's 7-level β sweep two ways:
//   * per-β   — one BuildHistogram(type, data, β) call per β, each
//               recomputing whatever aggregates/selections it needs
//               (the pre-engine behavior);
//   * sweep   — one BuildHistogramSweep call over a PREBUILT
//               DistributionStats. Stats construction is timed once per
//               config and reported as its own "stats-build" row, matching
//               real grid usage (core/experiment sweeps build stats once
//               per distribution and share them across every β — and a
//               grid over several types shares them across types too).
// Both sides take the best wall time of PATHEST_REPS runs, and the bucket
// vectors are asserted bit-identical before any timing is reported. A
// "total" row per config sums the measured types and charges the stats
// build to the sweep side, so it is an end-to-end comparison.
//
// --json[=path] additionally writes one JSON object per row to `path`
// (default BENCH_histograms.json): {"config", "n", "type", "levels",
// "per_beta_ms", "sweep_ms", "speedup"}. Scale knobs: PATHEST_SCALE
// (scales both configs), PATHEST_REPS (default 3), PATHEST_K (moreno path
// length, default 4). The exact-DP type is not measured at all: its sweep
// path is a plain per-β fallback (identity is unit-tested), and at
// β ~ n/2 its cost dwarfs every other builder by ~1000x while measuring
// nothing about the sweep engine.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/distribution.h"
#include "core/experiment.h"
#include "core/report.h"
#include "gen/datasets.h"
#include "histogram/builders.h"
#include "histogram/stats.h"
#include "ordering/factory.h"
#include "util/random.h"
#include "util/timer.h"

namespace pathest {
namespace {

// A paper-scale frequency sequence without the (expensive) exact
// selectivity pipeline: m = 20 n zipf-distributed path occurrences counted
// into n positions. Index order follows the zipf rank, so frequencies are
// clustered the way a good ordering clusters a real path distribution.
std::vector<uint64_t> SyntheticZipfDistribution(size_t n, uint64_t seed) {
  std::vector<uint64_t> data(n, 0);
  Rng rng(seed);
  ZipfDistribution zipf(n, 1.0);
  const size_t samples = 20 * n;
  for (size_t i = 0; i < samples; ++i) {
    ++data[zipf.Sample(&rng)];
  }
  return data;
}

std::vector<uint64_t> MorenoDistribution(double scale, size_t k) {
  auto graph = BuildDataset(DatasetId::kMorenoHealth, 0.25 * scale, 42);
  bench::DieIf(graph.status(), "moreno generation");
  auto map = ComputeSelectivities(*graph, k);
  bench::DieIf(map.status(), "selectivity computation");
  auto ordering = MakeOrdering("sum-based", *graph, k);
  bench::DieIf(ordering.status(), "ordering");
  auto dist = BuildDistribution(*map, **ordering);
  bench::DieIf(dist.status(), "distribution");
  return std::move(*dist);
}

struct Row {
  std::string config;
  size_t n = 0;
  std::string type;
  size_t levels = 0;
  double per_beta_ms = 0.0;
  double sweep_ms = 0.0;
  double speedup = 0.0;
};

bool SameBuckets(const Histogram& a, const Histogram& b) {
  if (a.num_buckets() != b.num_buckets()) return false;
  for (size_t i = 0; i < a.num_buckets(); ++i) {
    const Bucket& x = a.buckets()[i];
    const Bucket& y = b.buckets()[i];
    if (x.begin != y.begin || x.end != y.end || x.sum != y.sum ||
        x.sumsq != y.sumsq) {
      return false;
    }
  }
  return true;
}

Row MeasureType(const std::string& config, const std::vector<uint64_t>& data,
                const DistributionStats& stats, HistogramType type,
                const std::vector<size_t>& betas, size_t reps) {
  // Identity check first: the sweep must be a pure speedup.
  {
    auto sweep = BuildHistogramSweep(type, stats, betas);
    bench::DieIf(sweep.status(), "sweep build");
    for (size_t b = 0; b < betas.size(); ++b) {
      auto per_beta = BuildHistogram(type, data, betas[b]);
      bench::DieIf(per_beta.status(), "per-beta build");
      if (!SameBuckets((*sweep)[b], *per_beta)) {
        std::fprintf(stderr, "sweep/per-beta mismatch: %s type=%s beta=%zu\n",
                     config.c_str(), HistogramTypeName(type), betas[b]);
        std::exit(1);
      }
    }
  }

  Row row;
  row.config = config;
  row.n = data.size();
  row.type = HistogramTypeName(type);
  row.levels = betas.size();
  double sink = 0.0;
  // Interleave the two sides' reps so machine jitter drifts into both
  // minima equally instead of biasing whichever block ran second.
  for (size_t rep = 0; rep < reps; ++rep) {
    {
      Timer timer;
      for (size_t beta : betas) {
        auto h = BuildHistogram(type, data, beta);
        bench::DieIf(h.status(), "per-beta build");
        sink += h->TotalSse();
      }
      const double ms = timer.ElapsedMillis();
      if (rep == 0 || ms < row.per_beta_ms) row.per_beta_ms = ms;
    }
    {
      Timer timer;
      auto sweep = BuildHistogramSweep(type, stats, betas);
      bench::DieIf(sweep.status(), "sweep build");
      for (const Histogram& h : *sweep) sink += h.TotalSse();
      const double ms = timer.ElapsedMillis();
      if (rep == 0 || ms < row.sweep_ms) row.sweep_ms = ms;
    }
  }
  row.speedup = row.sweep_ms > 0.0 ? row.per_beta_ms / row.sweep_ms : 0.0;
  if (sink == -1.0) row.levels += 1;  // defeat dead-code elimination
  return row;
}

int Run(bool json_mode, const std::string& json_path) {
  const double scale = ScaleFromEnv();
  const size_t reps = bench::SizeFromEnv("PATHEST_REPS", 3);
  const size_t k = bench::SizeFromEnv("PATHEST_K", 4);

  struct Config {
    std::string name;
    std::vector<uint64_t> data;
  };
  std::vector<Config> configs;
  // Paper-scale domain: |L_6| over 6 labels = 55 986 positions.
  const size_t zipf_n = std::max<size_t>(
      512, static_cast<size_t>(55986.0 * scale));
  configs.push_back({"zipf-paper-n", SyntheticZipfDistribution(zipf_n, 42)});
  configs.push_back({"moreno-k" + std::to_string(k),
                     MorenoDistribution(scale, k)});

  const std::vector<HistogramType> types = {
      HistogramType::kEquiWidth, HistogramType::kEquiDepth,
      HistogramType::kVOptimal,  HistogramType::kMaxDiff,
      HistogramType::kEndBiased};

  std::vector<Row> rows;
  ReportTable table({"config", "n", "type", "per_beta_ms", "sweep_ms",
                     "speedup"});
  for (const Config& config : configs) {
    const std::vector<size_t> betas = BetaSweep(config.data.size(), 7);
    std::printf("%s: n=%zu, %zu beta levels (%zu..%zu), best of %zu reps\n",
                config.name.c_str(), config.data.size(), betas.size(),
                betas.empty() ? 0 : betas.front(),
                betas.empty() ? 0 : betas.back(), reps);

    // The one-time stats build every sweep consumer amortizes over its
    // grid; timed on its own and charged to the sweep side of the total.
    DistributionStats stats(config.data);
    double stats_ms = 0.0;
    for (size_t rep = 0; rep < reps; ++rep) {
      Timer timer;
      DistributionStats rebuilt(config.data);
      const double ms = timer.ElapsedMillis();
      if (rebuilt.n() != config.data.size()) std::exit(1);  // keep it alive
      if (rep == 0 || ms < stats_ms) stats_ms = ms;
    }
    Row stats_row;
    stats_row.config = config.name;
    stats_row.n = config.data.size();
    stats_row.type = "stats-build";
    stats_row.levels = betas.size();
    stats_row.sweep_ms = stats_ms;
    std::printf("  %-16s sweep=%9.3fms (one-time, shared by every build)\n",
                stats_row.type.c_str(), stats_ms);
    table.AddRow({config.name, std::to_string(stats_row.n), stats_row.type,
                  "-", FormatDouble(stats_ms, 3), "-"});
    rows.push_back(stats_row);

    Row total;
    total.config = config.name;
    total.n = config.data.size();
    total.type = "total";
    total.levels = betas.size();
    total.sweep_ms = stats_ms;
    for (HistogramType type : types) {
      Row row = MeasureType(config.name, config.data, stats, type, betas,
                            reps);
      std::printf("  %-16s per_beta=%9.3fms sweep=%9.3fms speedup=%5.2fx\n",
                  row.type.c_str(), row.per_beta_ms, row.sweep_ms,
                  row.speedup);
      std::fflush(stdout);
      table.AddRow({row.config, std::to_string(row.n), row.type,
                    FormatDouble(row.per_beta_ms, 3),
                    FormatDouble(row.sweep_ms, 3),
                    FormatDouble(row.speedup, 2)});
      total.per_beta_ms += row.per_beta_ms;
      total.sweep_ms += row.sweep_ms;
      rows.push_back(std::move(row));
    }
    total.speedup =
        total.sweep_ms > 0.0 ? total.per_beta_ms / total.sweep_ms : 0.0;
    std::printf("  %-16s per_beta=%9.3fms sweep=%9.3fms speedup=%5.2fx "
                "(stats build charged to the sweep)\n",
                total.type.c_str(), total.per_beta_ms, total.sweep_ms,
                total.speedup);
    table.AddRow({total.config, std::to_string(total.n), total.type,
                  FormatDouble(total.per_beta_ms, 3),
                  FormatDouble(total.sweep_ms, 3),
                  FormatDouble(total.speedup, 2)});
    rows.push_back(std::move(total));
  }
  std::printf("\n%s\n", table.ToString().c_str());

  if (json_mode) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(out,
                   "  {\"config\": \"%s\", \"n\": %zu, \"type\": \"%s\", "
                   "\"levels\": %zu, \"per_beta_ms\": %.3f, "
                   "\"sweep_ms\": %.3f, \"speedup\": %.2f}%s\n",
                   r.config.c_str(), r.n, r.type.c_str(), r.levels,
                   r.per_beta_ms, r.sweep_ms, r.speedup,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    std::printf("wrote %zu rows to %s\n", rows.size(), json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace pathest

int main(int argc, char** argv) {
  bool json_mode = false;
  std::string json_path = "BENCH_histograms.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_mode = true;
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--json[=path]]\n", argv[0]);
      return 2;
    }
  }
  return pathest::Run(json_mode, json_path);
}
