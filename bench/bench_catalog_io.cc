// bench_catalog_io: load-time comparison of the three on-disk catalog
// formats (core/serialize.h) at serving scale — a β≈28k estimator over
// |L_3| = 30783 paths (31 labels, lengths 1..3), the catalog size the
// paper's full-graph analyses produce. The text format pays hexfloat
// parsing per bucket row; the binary v1 format pays CRC32C sweeps and then
// reinterprets the column-major u64 rows directly; the page-aligned binary
// v2 is additionally mmap-servable: MappedCatalogEntry construction is
// header validation + pointer fixup (microseconds, no row copies), with
// the CRC sweep optional per verify tier and the row bytes faulted lazily.
// The bench asserts the zero-copy construction stays >= 50x faster than
// the v1 copying load, and that every path serves bit-identically.
//
// The estimator is synthetic (deterministic fabricated buckets assembled
// through the same FromBuckets/FromParts path deserialization uses), so
// the bench needs no graph build and isolates pure load cost. Before
// timing, both files are loaded once and their estimates compared
// bit-exactly over the full domain — a speedup over a WRONG loader is not
// a result.
//
// PATHEST_SCALE scales β (default 1.0 → β=27993), PATHEST_REPS the
// best-of repetition count (default 5). --json[=path] writes one JSON
// object (default BENCH_catalog_io.json) with the sizes, best times, and
// the binary-over-text speedup.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/catalog_cache.h"
#include "core/mapped_catalog.h"
#include "core/serialize.h"
#include "histogram/histogram.h"
#include "ordering/factory.h"
#include "path/path_space.h"
#include "util/safe_io.h"
#include "util/timer.h"

namespace pathest {
namespace {

// Deterministic per-bucket representative value (no RNG: reproducible
// bytes make the bench a fixture, not a flake).
double BucketValue(uint64_t i) {
  return static_cast<double>((i * 2654435761ull) % 1000u + 1u);
}

PathHistogram BuildSyntheticEstimator(size_t num_labels, size_t k,
                                      size_t beta, LabelDictionary* labels,
                                      std::vector<uint64_t>* cards) {
  for (size_t l = 0; l < num_labels; ++l) {
    labels->Intern("l" + std::to_string(l));
    cards->push_back(100 + 37 * l);
  }
  PathSpace space(num_labels, k);
  const uint64_t domain = space.size();
  PATHEST_CHECK(beta >= 2 && beta <= domain, "beta out of range");

  // Contiguous cover of [0, domain): the first (domain - beta) buckets
  // have width 2, the rest width 1.
  std::vector<Bucket> buckets;
  buckets.reserve(beta);
  const uint64_t wide = domain - beta;
  uint64_t begin = 0;
  for (uint64_t i = 0; i < beta; ++i) {
    const uint64_t width = i < wide ? 2 : 1;
    const double v = BucketValue(i);
    Bucket b;
    b.begin = begin;
    b.end = begin + width;
    b.sum = static_cast<double>(width) * v;
    b.sumsq = static_cast<double>(width) * v * v;
    buckets.push_back(b);
    begin += width;
  }
  auto histogram = Histogram::FromBuckets(std::move(buckets));
  bench::DieIf(histogram.status(), "FromBuckets");
  auto ordering = MakeOrderingFromStats("sum-based", *labels, *cards, k);
  bench::DieIf(ordering.status(), "MakeOrderingFromStats");
  auto est = PathHistogram::FromParts(std::move(*ordering),
                                      std::move(*histogram),
                                      HistogramType::kVOptimal);
  bench::DieIf(est.status(), "FromParts");
  return std::move(*est);
}

double BestLoadMillis(const std::string& path, size_t reps) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Timer timer;
    auto loaded = LoadPathHistogram(path);
    const double ms = timer.ElapsedMillis();
    bench::DieIf(loaded.status(), "LoadPathHistogram");
    if (ms < best) best = ms;
  }
  return best;
}

// Best-of mmap zero-copy construction: map + parse + pointer fixup, no
// row copies. Returns microseconds — the v2 headline is in a different
// unit class than the millisecond loads above.
double BestMmapConstructMicros(const std::string& path, CatalogVerify verify,
                               size_t reps) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Timer timer;
    auto mapped = MappedCatalogEntry::Open(path, verify);
    const double us = static_cast<double>(timer.ElapsedNanos()) / 1000.0;
    bench::DieIf(mapped.status(), "MappedCatalogEntry::Open");
    if (us < best) best = us;
  }
  return best;
}

int Run(bool json_mode, const std::string& json_path) {
  const size_t k = 3;
  const size_t num_labels = 31;
  const double scale = ScaleFromEnv();
  const uint64_t domain = PathSpace(num_labels, k).size();
  size_t beta = static_cast<size_t>(27993 * scale);
  if (beta < 2) beta = 2;
  if (beta > domain) beta = static_cast<size_t>(domain);
  const size_t reps = bench::SizeFromEnv("PATHEST_REPS", 5);

  LabelDictionary labels;
  std::vector<uint64_t> cards;
  PathHistogram est =
      BuildSyntheticEstimator(num_labels, k, beta, &labels, &cards);
  std::printf("catalog: %s, beta=%zu over |L_%zu|=%llu\n",
              est.Describe().c_str(), beta, k,
              static_cast<unsigned long long>(domain));

  const std::string dir = "/tmp";
  const std::string text_path = dir + "/pathest_bench_catalog.text.stats";
  const std::string bin_path = dir + "/pathest_bench_catalog.bin.stats";
  std::ostringstream text;
  bench::DieIf(WritePathHistogram(est, labels, cards, &text), "write text");
  bench::DieIf(AtomicWriteFile(text_path, text.str()), "save text");
  std::string binary;
  bench::DieIf(WritePathHistogramBinary(est, labels, cards, &binary),
               "write binary");
  bench::DieIf(AtomicWriteFile(bin_path, binary), "save binary");
  const std::string v2_path = dir + "/pathest_bench_catalog.v2.stats";
  std::string v2;
  bench::DieIf(WritePathHistogramBinaryV2(est, labels, cards, &v2),
               "write binary v2");
  bench::DieIf(AtomicWriteFile(v2_path, v2), "save binary v2");
  std::printf("text=%zu bytes, binary=%zu bytes, binary-v2=%zu bytes\n",
              text.str().size(), binary.size(), v2.size());

  // Correctness gate before any timing: both loads must reproduce the
  // original estimator bit-exactly over the whole domain.
  auto from_text = LoadPathHistogram(text_path);
  auto from_bin = LoadPathHistogram(bin_path);
  auto from_v2 = LoadPathHistogram(v2_path);
  auto from_mmap = MappedCatalogEntry::Open(v2_path, CatalogVerify::kFull);
  bench::DieIf(from_text.status(), "load text");
  bench::DieIf(from_bin.status(), "load binary");
  bench::DieIf(from_v2.status(), "load binary v2");
  bench::DieIf(from_mmap.status(), "mmap binary v2");
  PathSpace space(num_labels, k);
  RankScratch scratch;
  scratch.Reserve(num_labels);
  size_t mismatches = 0;
  space.ForEach([&](const LabelPath& p) {
    const double want = est.Estimate(p);
    if (from_text->estimator.Estimate(p) != want ||
        from_bin->estimator.Estimate(p) != want ||
        from_v2->estimator.Estimate(p) != want ||
        (*from_mmap)->estimator().Estimate(p, scratch) != want) {
      ++mismatches;
    }
  });
  if (mismatches != 0) {
    std::fprintf(stderr, "FORMAT MISMATCH on %zu paths\n", mismatches);
    return 1;
  }
  std::printf("cross-format identity (incl. mmap): OK over all %llu paths\n",
              static_cast<unsigned long long>(domain));
  from_mmap->reset();  // drop the pin before timing

  const double text_ms = BestLoadMillis(text_path, reps);
  const double binary_ms = BestLoadMillis(bin_path, reps);
  const double speedup = text_ms / binary_ms;
  std::printf("load (best of %zu): text=%.3fms binary=%.3fms  "
              "binary speedup=%.2fx\n",
              reps, text_ms, binary_ms, speedup);

  // v2 rows: the copying load (kFull rebuild comparisons — the strictest
  // tier), the zero-copy constructions at the trusted and checksummed
  // tiers, the first estimate straight after mapping (faults the pages
  // the query touches), and a cache re-pin of an unchanged file.
  const double v2_copy_ms = BestLoadMillis(v2_path, reps);
  const double v2_mmap_construct_us =
      BestMmapConstructMicros(v2_path, CatalogVerify::kTrusted, reps);
  const double v2_mmap_verified_us =
      BestMmapConstructMicros(v2_path, CatalogVerify::kChecksums, reps);
  double v2_first_estimate_us = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    auto mapped = MappedCatalogEntry::Open(v2_path, CatalogVerify::kTrusted);
    bench::DieIf(mapped.status(), "mmap for first-estimate");
    LabelPath probe;
    probe.PushBack(0);
    Timer timer;
    const double got = (*mapped)->estimator().Estimate(probe, scratch);
    const double us = static_cast<double>(timer.ElapsedNanos()) / 1000.0;
    if (got != est.Estimate(probe)) {
      std::fprintf(stderr, "FIRST-ESTIMATE MISMATCH\n");
      return 1;
    }
    if (us < v2_first_estimate_us) v2_first_estimate_us = us;
  }
  double v2_repin_us = 1e300;
  {
    CatalogCache cache;
    auto first = cache.GetOrOpen(v2_path);
    bench::DieIf(first.status(), "cache prime");
    for (size_t r = 0; r < reps; ++r) {
      Timer timer;
      auto again = cache.GetOrOpen(v2_path);
      const double us = static_cast<double>(timer.ElapsedNanos()) / 1000.0;
      bench::DieIf(again.status(), "cache re-pin");
      if (us < v2_repin_us) v2_repin_us = us;
    }
  }
  const double mmap_speedup = binary_ms * 1000.0 / v2_mmap_construct_us;
  std::printf("v2 (best of %zu): copy=%.3fms mmap-construct=%.1fus "
              "mmap-verified=%.1fus first-estimate=%.2fus repin=%.2fus  "
              "mmap speedup over v1 copy=%.0fx\n",
              reps, v2_copy_ms, v2_mmap_construct_us, v2_mmap_verified_us,
              v2_first_estimate_us, v2_repin_us, mmap_speedup);
  // The acceptance floor of the zero-copy path is part of the bench: a
  // regression that drags construction back toward a copying load fails
  // loudly instead of quietly shipping a slower number.
  if (mmap_speedup < 50.0) {
    std::fprintf(stderr,
                 "MMAP SPEEDUP REGRESSION: %.1fx < 50x floor "
                 "(construct=%.1fus vs v1 copy=%.3fms)\n",
                 mmap_speedup, v2_mmap_construct_us, binary_ms);
    return 1;
  }

  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
  std::remove(v2_path.c_str());

  if (!json_mode) return 0;
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"catalog_io\",\n"
               "  \"k\": %zu,\n"
               "  \"num_labels\": %zu,\n"
               "  \"domain\": %llu,\n"
               "  \"beta\": %zu,\n"
               "  \"reps\": %zu,\n"
               "  \"text_bytes\": %zu,\n"
               "  \"binary_bytes\": %zu,\n"
               "  \"text_ms\": %.4f,\n"
               "  \"binary_ms\": %.4f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"v2_bytes\": %zu,\n"
               "  \"v2_copy_ms\": %.4f,\n"
               "  \"v2_mmap_construct_us\": %.2f,\n"
               "  \"v2_mmap_verified_us\": %.2f,\n"
               "  \"v2_first_estimate_us\": %.2f,\n"
               "  \"v2_repin_us\": %.2f,\n"
               "  \"mmap_speedup\": %.1f\n"
               "}\n",
               k, num_labels, static_cast<unsigned long long>(domain), beta,
               reps, text.str().size(), binary.size(), text_ms, binary_ms,
               speedup, v2.size(), v2_copy_ms, v2_mmap_construct_us,
               v2_mmap_verified_us, v2_first_estimate_us, v2_repin_us,
               mmap_speedup);
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace pathest

int main(int argc, char** argv) {
  bool json_mode = false;
  std::string json_path = "BENCH_catalog_io.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_mode = true;
      json_path = arg.substr(7);
    }
  }
  return pathest::Run(json_mode, json_path);
}
