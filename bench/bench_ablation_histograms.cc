// Ablation A1 (beyond the paper): does the ordering effect survive under
// histogram construction policies other than V-optimal?
//
// Sweeps every histogram type x every ordering method (plus the ideal
// baseline) on the Moreno-like dataset at k = 4 with a mid-range bucket
// budget, reporting mean |err|. The paper's claim is about DOMAIN ORDERING;
// if it is fundamental, sum-based should lead for any reasonable bucketing
// policy, with the gap largest for cheap policies (equi-width).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"
#include "core/report.h"
#include "ordering/factory.h"

namespace pathest {
namespace {

int Run() {
  const size_t k = bench::SizeFromEnv("PATHEST_K", 4);
  Graph graph = bench::BuildBenchDataset(DatasetId::kMorenoHealth);
  SelectivityMap map = bench::ComputeWithProgress(graph, k, "moreno");

  PathSpace space(graph.num_labels(), k);
  const size_t beta = space.size() / 16;

  std::vector<std::string> methods = PaperOrderingNames();
  methods.push_back("ideal");

  const std::vector<HistogramType> types = {
      HistogramType::kEquiWidth, HistogramType::kEquiDepth,
      HistogramType::kVOptimal, HistogramType::kMaxDiff,
      HistogramType::kEndBiased};

  std::vector<std::string> header = {"histogram"};
  for (const auto& m : methods) header.push_back(m);
  ReportTable table(header);

  for (HistogramType type : types) {
    // One batched grid call per type: orderings fan out on the engine
    // ThreadPool and each row shares its distribution stats.
    auto grid = MeasureAccuracySweep(graph, map, methods, k, {beta}, type,
                                     bench::ThreadsFromEnv());
    bench::DieIf(grid.status(), HistogramTypeName(type));
    std::vector<std::string> row = {HistogramTypeName(type)};
    for (size_t o = 0; o < methods.size(); ++o) {
      row.push_back(FormatDouble((*grid)[o].errors.mean_abs_error, 4));
    }
    table.AddRow(std::move(row));
  }

  std::printf("Ablation A1: mean error rate by histogram type x ordering "
              "(moreno-like, k=%zu, beta=%zu, |L_k|=%llu)\n\n%s\n",
              k, beta, static_cast<unsigned long long>(space.size()),
              table.ToString().c_str());
  bench::DieIf(table.WriteCsv("ablation_histograms.csv"), "csv");
  std::printf("expected shape: sum-based leads every row; ideal is the "
              "floor; the ordering gap narrows for v-optimal (which can "
              "rescue bad orderings with adaptive boundaries).\n");
  return 0;
}

}  // namespace
}  // namespace pathest

int main() { return pathest::Run(); }
