// bench_serve_latency: request latency of the estimation service
// (serve/server.h) under concurrent load, with and without a reload storm
// running underneath — the number that makes "atomic snapshot hot-swap"
// a measurement instead of a slogan. If reloads serialized serving, the
// p99 of the storm rows would blow up; with lock-free snapshot pinning
// they should track the calm rows closely.
//
// Setup: a moreno-like graph at PATHEST_SCALE (default: the paper's full
// size), one k=3
// sum-based estimator saved as a binary catalog entry, an in-process
// ServeServer on a Unix socket. Each row runs N client threads, every
// client its own connection, each issuing PATHEST_SERVE_REQS (default
// 400) `estimate` requests of 6 paths and recording per-request
// round-trip latency. Storm rows add one thread issuing back-to-back
// `reload` requests the whole time.
//
// --json[=path] writes one JSON object (default BENCH_serve_latency.json)
// with per-row p50/p99/mean microseconds and aggregate qps.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/serialize.h"
#include "histogram/histogram.h"
#include "ordering/factory.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/timer.h"

namespace pathest {
namespace {

struct Row {
  size_t clients = 0;
  bool reload_storm = false;
  size_t requests = 0;
  size_t errors = 0;
  size_t reloads = 0;
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  double qps = 0;
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

Row RunRow(const std::string& socket_path, const std::string& query,
           size_t clients, size_t requests_per_client, bool reload_storm) {
  Row row;
  row.clients = clients;
  row.reload_storm = reload_storm;

  std::atomic<bool> storm_stop{false};
  std::atomic<size_t> reloads{0};
  std::thread storm;
  if (reload_storm) {
    storm = std::thread([&] {
      auto client = serve::ServeClient::Connect(socket_path);
      if (!client.ok()) return;
      while (!storm_stop.load(std::memory_order_acquire)) {
        auto resp = client->Call("reload");
        if (resp.ok() && resp->rfind("ok", 0) == 0) {
          reloads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::vector<double>> latencies(clients);
  std::atomic<size_t> errors{0};
  Timer wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = serve::ServeClient::Connect(socket_path);
      if (!client.ok()) {
        errors.fetch_add(requests_per_client);
        return;
      }
      latencies[c].reserve(requests_per_client);
      for (size_t i = 0; i < requests_per_client; ++i) {
        Timer timer;
        auto resp = client->Call(query);
        const double us = timer.ElapsedMillis() * 1000.0;
        if (!resp.ok() || resp->rfind("ok ", 0) != 0) {
          errors.fetch_add(1);
        } else {
          latencies[c].push_back(us);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();
  if (reload_storm) {
    storm_stop.store(true, std::memory_order_release);
    storm.join();
  }

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  row.requests = all.size();
  row.errors = errors.load();
  row.reloads = reloads.load();
  row.p50_us = Percentile(all, 0.50);
  row.p99_us = Percentile(all, 0.99);
  double sum = 0;
  for (double v : all) sum += v;
  row.mean_us = all.empty() ? 0 : sum / static_cast<double>(all.size());
  row.qps = wall_s > 0 ? static_cast<double>(all.size()) / wall_s : 0;
  return row;
}

int Run(bool json_mode, const std::string& json_path) {
  const size_t requests_per_client =
      bench::SizeFromEnv("PATHEST_SERVE_REQS", 400);

  // One catalog entry: moreno-like graph, k=3, sum-based, binary format.
  Graph graph = bench::BuildBenchDataset(DatasetId::kMorenoHealth);
  SelectivityMap truth = bench::ComputeWithProgress(graph, 3, "serve");
  auto ordering = MakeOrdering("sum-based", graph, 3);
  bench::DieIf(ordering.status(), "ordering");
  auto estimator = PathHistogram::Build(truth, std::move(*ordering),
                                        HistogramType::kVOptimal, 64);
  bench::DieIf(estimator.status(), "estimator build");

  const auto root = std::filesystem::temp_directory_path() /
                    ("pathest_bench_serve_" + std::to_string(::getpid()));
  std::filesystem::create_directories(root / "cat");
  bench::DieIf(SavePathHistogram(*estimator, graph,
                                 (root / "cat" / "moreno.stats").string(),
                                 CatalogFormat::kBinary),
               "catalog save");

  serve::ServeOptions options;
  options.socket_path = (root / "s.sock").string();
  options.catalog_dir = (root / "cat").string();
  // Enough workers that every bench client (max row below) plus the storm
  // thread holds a connection without starving anyone.
  options.num_workers = 10;
  options.queue_capacity = 64;
  serve::ServeServer server(options);
  bench::DieIf(server.Start(), "server start");

  // A 6-path batch over the first three labels (moreno labels are "1"...).
  const std::string l1 = graph.labels().Name(0);
  const std::string l2 = graph.labels().Name(graph.num_labels() > 1 ? 1 : 0);
  const std::string l3 = graph.labels().Name(graph.num_labels() > 2 ? 2 : 0);
  const std::string query = "estimate moreno " + l1 + " " + l2 + " " + l1 +
                            "/" + l2 + " " + l2 + "/" + l3 + " " + l1 + "/" +
                            l2 + "/" + l3 + " " + l3;

  std::vector<Row> rows;
  for (size_t clients : {size_t{1}, size_t{4}, size_t{8}}) {
    for (bool storm : {false, true}) {
      Row row = RunRow(options.socket_path, query, clients,
                       requests_per_client, storm);
      rows.push_back(row);
      std::printf(
          "clients=%zu storm=%d: %zu reqs, p50=%.1fus p99=%.1fus "
          "mean=%.1fus qps=%.0f errors=%zu reloads=%zu\n",
          row.clients, row.reload_storm ? 1 : 0, row.requests, row.p50_us,
          row.p99_us, row.mean_us, row.qps, row.errors, row.reloads);
      if (row.errors != 0) {
        std::fprintf(stderr, "bench invalid: %zu errored requests\n",
                     row.errors);
        return 1;
      }
    }
  }

  server.RequestStop();
  server.Wait();
  std::error_code ec;
  std::filesystem::remove_all(root, ec);

  if (!json_mode) return 0;
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"serve_latency\",\n");
  std::fprintf(out, "  \"requests_per_client\": %zu,\n", requests_per_client);
  std::fprintf(out, "  \"workers\": %zu,\n", options.num_workers);
  std::fprintf(out, "  \"num_labels\": %zu,\n", graph.num_labels());
  std::fprintf(out, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"clients\": %zu, \"reload_storm\": %s, "
                 "\"requests\": %zu, \"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"mean_us\": %.1f, \"qps\": %.0f, \"reloads\": %zu}%s\n",
                 r.clients, r.reload_storm ? "true" : "false", r.requests,
                 r.p50_us, r.p99_us, r.mean_us, r.qps, r.reloads,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace pathest

int main(int argc, char** argv) {
  bool json_mode = false;
  std::string json_path = "BENCH_serve_latency.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_mode = true;
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  return pathest::Run(json_mode, json_path);
}
