// Microbenchmark M2 (google-benchmark): throughput of the exact selectivity
// evaluator and of histogram construction, the two build-time costs of the
// pipeline.
//
// The selectivity rows take {k, threads, kernel, strategy} (kernel: 0 =
// auto, 1 = sparse, 2 = dense; strategy: 0 = fused, 1 = per-label). The
// threads=1/kernel=sparse/strategy=per-label rows are the scalar baseline;
// every other row's map is asserted bit-identical to it.
//
// --json[=path] switches to a machine-readable sweep instead of the
// google-benchmark console: it times ComputeSelectivities for every
// (dataset, threads, strategy, kernel) cell — best wall time of
// PATHEST_REPS runs — and writes one JSON array to `path` (default
// BENCH_selectivity.json), one object per cell: {"dataset", "k",
// "threads", "strategy", "kernel", "build_ms"}. Cross-strategy /
// cross-kernel / cross-thread bit-identity of the map is asserted inside
// the sweep (every cell against the first cell's values). The er-dense
// dataset is an Erdős–Rényi configuration dense enough that the dense
// bitmap kernel should win by an integer factor; the printed summary
// reports the fused-vs-per-label and dense-vs-sparse speedups and how
// close auto tracks the better kernel. Scale knobs: PATHEST_SCALE,
// PATHEST_REPS, PATHEST_K.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/distribution.h"
#include "gen/datasets.h"
#include "gen/generator.h"
#include "gen/label_assigner.h"
#include "histogram/builders.h"
#include "ordering/factory.h"
#include "path/selectivity.h"
#include "util/status.h"
#include "util/timer.h"

namespace pathest {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    auto g = BuildDataset(DatasetId::kMorenoHealth, 0.25, 42);
    PATHEST_CHECK(g.ok(), "dataset build failed");
    return new Graph(std::move(*g));
  }();
  return *graph;
}

// Args: {k, num_threads, kernel, strategy}. The threads=1/kernel=sparse/
// strategy=per-label rows are the scalar baseline; the parallel-engine
// speedup is threads=N vs threads=1 at equal k, the kernel speedup is
// kernel=dense/auto vs kernel=sparse at threads=1, and the fusion speedup
// is strategy=fused vs strategy=per-label at equal everything else. Every
// row's map is asserted bit-identical to the baseline.
void BM_ComputeSelectivities(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  const PairKernel kernel = static_cast<PairKernel>(state.range(2));
  const ExtendStrategy strategy = static_cast<ExtendStrategy>(state.range(3));
  SelectivityOptions options;
  options.num_threads = threads;
  options.kernel = kernel;
  options.strategy = strategy;
  static std::map<size_t, std::vector<uint64_t>>* baseline_maps =
      new std::map<size_t, std::vector<uint64_t>>();
  for (auto _ : state) {
    auto map = ComputeSelectivities(BenchGraph(), k, options);
    PATHEST_CHECK(map.ok(), "selectivity failed");
    benchmark::DoNotOptimize(map->Total());
    if (threads == 1 && kernel == PairKernel::kSparse &&
        strategy == ExtendStrategy::kPerLabel) {
      (*baseline_maps)[k] = map->values();
    } else if (auto it = baseline_maps->find(k); it != baseline_maps->end()) {
      PATHEST_CHECK(it->second == map->values(),
                    "map differs from the sparse serial baseline");
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(PathSpace(6, k).size()));
}
BENCHMARK(BM_ComputeSelectivities)
    ->ArgNames({"k", "threads", "kernel", "strategy"})
    ->Args({2, 1, 1, 1})
    ->Args({3, 1, 1, 1})
    ->Args({4, 1, 1, 1})  // per-label sparse baselines first: later rows
    ->Args({4, 1, 2, 1})  // check against them
    ->Args({4, 1, 0, 1})
    ->Args({4, 1, 0, 0})
    ->Args({4, 2, 0, 0})
    ->Args({4, 4, 0, 0})
    ->Args({5, 1, 1, 1})
    ->Args({5, 1, 2, 1})
    ->Args({5, 1, 0, 1})
    ->Args({5, 1, 0, 0})
    ->Args({5, 2, 0, 0})
    ->Args({5, 4, 0, 0})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

const std::vector<uint64_t>& BenchDistribution() {
  static const std::vector<uint64_t>* dist = [] {
    auto map = ComputeSelectivities(BenchGraph(), 5);
    PATHEST_CHECK(map.ok(), "selectivity failed");
    auto ordering = MakeOrdering("sum-based", BenchGraph(), 5);
    PATHEST_CHECK(ordering.ok(), "ordering failed");
    auto d = BuildDistribution(*map, **ordering);
    PATHEST_CHECK(d.ok(), "distribution failed");
    return new std::vector<uint64_t>(std::move(*d));
  }();
  return *dist;
}

void BM_BuildHistogram(benchmark::State& state, HistogramType type) {
  const auto& dist = BenchDistribution();
  const size_t beta = dist.size() / static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto h = BuildHistogram(type, dist, beta);
    PATHEST_CHECK(h.ok(), "histogram failed");
    benchmark::DoNotOptimize(h->TotalSse());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dist.size()));
}

void RegisterHistogramBenches() {
  struct Entry {
    const char* name;
    HistogramType type;
  };
  for (Entry e : {Entry{"equi-width", HistogramType::kEquiWidth},
                  Entry{"equi-depth", HistogramType::kEquiDepth},
                  Entry{"v-optimal-greedy", HistogramType::kVOptimal},
                  Entry{"maxdiff", HistogramType::kMaxDiff},
                  Entry{"end-biased", HistogramType::kEndBiased}}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_BuildHistogram/") + e.name).c_str(),
        [type = e.type](benchmark::State& s) { BM_BuildHistogram(s, type); })
        ->Arg(4)
        ->Arg(64);
  }
}

// ------------------------------------------------------------- --json mode

// An Erdős–Rényi configuration dense enough that penultimate-level cells
// run ~30 candidate emissions per bitmap word — the dense kernel's home
// turf. Density per word FALLS as |V| grows at fixed degree (cells stay
// ~deg² emissions while the scan is |V|/64 words), so a compact graph is
// the dense showcase; override with PATHEST_ER_V / PATHEST_ER_DEG to map
// the crossover (dense ≈ sparse near |V|=8000 at degree 30).
Graph BuildDenseErGraph(double scale) {
  ErdosRenyiParams params;
  params.num_vertices = std::max<size_t>(
      60, static_cast<size_t>(
              static_cast<double>(bench::SizeFromEnv("PATHEST_ER_V", 2000)) *
              scale));
  params.num_edges =
      params.num_vertices * bench::SizeFromEnv("PATHEST_ER_DEG", 30);
  params.seed = 42;
  UniformLabelAssigner labels(3);
  auto g = GenerateErdosRenyi(params, &labels);
  bench::DieIf(g.status(), "er-dense generation");
  return std::move(g).ValueOrDie();
}

struct JsonRow {
  std::string dataset;
  size_t k;
  size_t threads;
  ExtendStrategy strategy;
  PairKernel kernel;
  double build_ms;
};

int RunJsonMode(const std::string& out_path) {
  const double scale = ScaleFromEnv();
  const size_t reps = bench::SizeFromEnv("PATHEST_REPS", 3);

  struct Config {
    std::string name;
    Graph graph;
    size_t k;
  };
  std::vector<Config> configs;
  configs.push_back({"er-dense", BuildDenseErGraph(scale), 3});
  {
    auto moreno = BuildDataset(DatasetId::kMorenoHealth, 0.25 * scale, 42);
    bench::DieIf(moreno.status(), "moreno generation");
    configs.push_back({"moreno", std::move(moreno).ValueOrDie(),
                       bench::SizeFromEnv("PATHEST_K", 4)});
  }

  constexpr PairKernel kKernels[] = {PairKernel::kSparse, PairKernel::kDense,
                                     PairKernel::kAuto};
  constexpr ExtendStrategy kStrategies[] = {ExtendStrategy::kPerLabel,
                                            ExtendStrategy::kFused};
  std::vector<JsonRow> rows;
  for (const Config& config : configs) {
    std::printf("%s: |V|=%zu |E|=%zu |L|=%zu k=%zu\n", config.name.c_str(),
                config.graph.num_vertices(), config.graph.num_edges(),
                config.graph.num_labels(), config.k);
    // threads=1 always; the hardware-resolved count too when it differs.
    std::vector<size_t> thread_counts{1};
    SelectivityOptions hw;
    hw.num_threads = 0;
    const size_t resolved =
        ResolvedNumThreads(hw, config.graph.num_labels(), config.k);
    if (resolved > 1) thread_counts.push_back(resolved);

    std::vector<uint64_t> baseline_values;
    for (size_t threads : thread_counts) {
      // [strategy][kernel], indexed by the enum values.
      double ms_cell[2][3] = {{0, 0, 0}, {0, 0, 0}};
      for (ExtendStrategy strategy : kStrategies) {
        for (PairKernel kernel : kKernels) {
          SelectivityOptions options;
          options.num_threads = threads;
          options.kernel = kernel;
          options.strategy = strategy;
          double best_ms = 0.0;
          for (size_t rep = 0; rep < reps; ++rep) {
            Timer timer;
            auto map = ComputeSelectivities(config.graph, config.k, options);
            const double ms = timer.ElapsedMillis();
            bench::DieIf(map.status(), "selectivity computation");
            if (rep == 0 || ms < best_ms) best_ms = ms;
            // Cross-strategy / cross-kernel / cross-thread identity: every
            // cell's map must equal the first cell's, bit for bit.
            if (baseline_values.empty()) {
              baseline_values = map->values();
            } else {
              PATHEST_CHECK(map->values() == baseline_values,
                            "map differs across strategies/kernels/threads");
            }
          }
          rows.push_back(
              {config.name, config.k, threads, strategy, kernel, best_ms});
          ms_cell[static_cast<size_t>(strategy)]
                 [static_cast<size_t>(kernel)] = best_ms;
          std::printf("  threads=%zu strategy=%-9s kernel=%-6s build_ms=%.3f\n",
                      threads, ExtendStrategyName(strategy),
                      PairKernelName(kernel), best_ms);
        }
      }
      const double per_label_auto = ms_cell[1][0];
      const double fused_auto = ms_cell[0][0];
      const double sparse_ms = ms_cell[1][1];
      const double dense_ms = ms_cell[1][2];
      const double best = std::min(sparse_ms, dense_ms);
      if (fused_auto > 0 && dense_ms > 0 && best > 0) {
        std::printf(
            "  threads=%zu summary: fused %.2fx vs per-label (auto kernel), "
            "dense %.2fx vs sparse (per-label), auto/best %.2f\n",
            threads, per_label_auto / fused_auto, sparse_ms / dense_ms,
            per_label_auto / best);
      }
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(out,
                 "  {\"dataset\": \"%s\", \"k\": %zu, \"threads\": %zu, "
                 "\"strategy\": \"%s\", \"kernel\": \"%s\", "
                 "\"build_ms\": %.3f}%s\n",
                 r.dataset.c_str(), r.k, r.threads,
                 ExtendStrategyName(r.strategy), PairKernelName(r.kernel),
                 r.build_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("wrote %zu rows to %s\n", rows.size(), out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace pathest

int main(int argc, char** argv) {
  // Peel off --json[=path] before google-benchmark sees the argv.
  bool json_mode = false;
  std::string json_path = "BENCH_selectivity.json";
  std::vector<char*> kept;
  kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_mode = true;
      json_path = arg.substr(7);
    } else {
      kept.push_back(argv[i]);
    }
  }
  if (json_mode) return pathest::RunJsonMode(json_path);

  int kept_argc = static_cast<int>(kept.size());
  pathest::RegisterHistogramBenches();
  benchmark::Initialize(&kept_argc, kept.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
