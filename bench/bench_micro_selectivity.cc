// Microbenchmark M2 (google-benchmark): throughput of the exact selectivity
// evaluator and of histogram construction, the two build-time costs of the
// pipeline.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "core/distribution.h"
#include "gen/datasets.h"
#include "histogram/builders.h"
#include "ordering/factory.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    auto g = BuildDataset(DatasetId::kMorenoHealth, 0.25, 42);
    PATHEST_CHECK(g.ok(), "dataset build failed");
    return new Graph(std::move(*g));
  }();
  return *graph;
}

// Args: {k, num_threads}. The threads=1 rows are the serial baseline; the
// speedup claim of the parallel engine is threads=N row vs threads=1 row at
// equal k. Every row's map is asserted bit-identical to the serial one.
void BM_ComputeSelectivities(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  SelectivityOptions options;
  options.num_threads = threads;
  static std::map<size_t, std::vector<uint64_t>>* serial_maps =
      new std::map<size_t, std::vector<uint64_t>>();
  for (auto _ : state) {
    auto map = ComputeSelectivities(BenchGraph(), k, options);
    PATHEST_CHECK(map.ok(), "selectivity failed");
    benchmark::DoNotOptimize(map->Total());
    if (threads == 1) {
      (*serial_maps)[k] = map->values();
    } else if (auto it = serial_maps->find(k); it != serial_maps->end()) {
      PATHEST_CHECK(it->second == map->values(),
                    "parallel map differs from serial baseline");
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(PathSpace(6, k).size()));
}
BENCHMARK(BM_ComputeSelectivities)
    ->Args({2, 1})
    ->Args({3, 1})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({5, 1})
    ->Args({5, 2})
    ->Args({5, 4})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

const std::vector<uint64_t>& BenchDistribution() {
  static const std::vector<uint64_t>* dist = [] {
    auto map = ComputeSelectivities(BenchGraph(), 5);
    PATHEST_CHECK(map.ok(), "selectivity failed");
    auto ordering = MakeOrdering("sum-based", BenchGraph(), 5);
    PATHEST_CHECK(ordering.ok(), "ordering failed");
    auto d = BuildDistribution(*map, **ordering);
    PATHEST_CHECK(d.ok(), "distribution failed");
    return new std::vector<uint64_t>(std::move(*d));
  }();
  return *dist;
}

void BM_BuildHistogram(benchmark::State& state, HistogramType type) {
  const auto& dist = BenchDistribution();
  const size_t beta = dist.size() / static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto h = BuildHistogram(type, dist, beta);
    PATHEST_CHECK(h.ok(), "histogram failed");
    benchmark::DoNotOptimize(h->TotalSse());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dist.size()));
}

void RegisterHistogramBenches() {
  struct Entry {
    const char* name;
    HistogramType type;
  };
  for (Entry e : {Entry{"equi-width", HistogramType::kEquiWidth},
                  Entry{"equi-depth", HistogramType::kEquiDepth},
                  Entry{"v-optimal-greedy", HistogramType::kVOptimal},
                  Entry{"maxdiff", HistogramType::kMaxDiff},
                  Entry{"end-biased", HistogramType::kEndBiased}}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_BuildHistogram/") + e.name).c_str(),
        [type = e.type](benchmark::State& s) { BM_BuildHistogram(s, type); })
        ->Arg(4)
        ->Arg(64);
  }
}

}  // namespace
}  // namespace pathest

int main(int argc, char** argv) {
  pathest::RegisterHistogramBenches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
