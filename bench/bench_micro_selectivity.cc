// Microbenchmark M2 (google-benchmark): throughput of the exact selectivity
// evaluator and of histogram construction, the two build-time costs of the
// pipeline.

#include <benchmark/benchmark.h>

#include "core/distribution.h"
#include "gen/datasets.h"
#include "histogram/builders.h"
#include "ordering/factory.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    auto g = BuildDataset(DatasetId::kMorenoHealth, 0.25, 42);
    PATHEST_CHECK(g.ok(), "dataset build failed");
    return new Graph(std::move(*g));
  }();
  return *graph;
}

void BM_ComputeSelectivities(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto map = ComputeSelectivities(BenchGraph(), k);
    PATHEST_CHECK(map.ok(), "selectivity failed");
    benchmark::DoNotOptimize(map->Total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(PathSpace(6, k).size()));
}
BENCHMARK(BM_ComputeSelectivities)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

const std::vector<uint64_t>& BenchDistribution() {
  static const std::vector<uint64_t>* dist = [] {
    auto map = ComputeSelectivities(BenchGraph(), 5);
    PATHEST_CHECK(map.ok(), "selectivity failed");
    auto ordering = MakeOrdering("sum-based", BenchGraph(), 5);
    PATHEST_CHECK(ordering.ok(), "ordering failed");
    auto d = BuildDistribution(*map, **ordering);
    PATHEST_CHECK(d.ok(), "distribution failed");
    return new std::vector<uint64_t>(std::move(*d));
  }();
  return *dist;
}

void BM_BuildHistogram(benchmark::State& state, HistogramType type) {
  const auto& dist = BenchDistribution();
  const size_t beta = dist.size() / static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto h = BuildHistogram(type, dist, beta);
    PATHEST_CHECK(h.ok(), "histogram failed");
    benchmark::DoNotOptimize(h->TotalSse());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dist.size()));
}

void RegisterHistogramBenches() {
  struct Entry {
    const char* name;
    HistogramType type;
  };
  for (Entry e : {Entry{"equi-width", HistogramType::kEquiWidth},
                  Entry{"equi-depth", HistogramType::kEquiDepth},
                  Entry{"v-optimal-greedy", HistogramType::kVOptimal},
                  Entry{"maxdiff", HistogramType::kMaxDiff},
                  Entry{"end-biased", HistogramType::kEndBiased}}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_BuildHistogram/") + e.name).c_str(),
        [type = e.type](benchmark::State& s) { BM_BuildHistogram(s, type); })
        ->Arg(4)
        ->Arg(64);
  }
}

}  // namespace
}  // namespace pathest

int main(int argc, char** argv) {
  pathest::RegisterHistogramBenches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
