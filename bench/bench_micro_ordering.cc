// Microbenchmark M1 (google-benchmark): rank/unrank throughput per ordering
// method. This isolates the cost difference Table 4 attributes to the
// sum-based (un)ranking functions.

#include <benchmark/benchmark.h>

#include "gen/datasets.h"
#include "ordering/factory.h"
#include "util/random.h"
#include "util/status.h"

namespace pathest {
namespace {

// Shared fixture state: a moreno-shaped label set (6 labels, skewed
// cardinalities) at k = 6. Built once.
const Graph& BenchGraph() {
  static const Graph* graph = [] {
    auto g = BuildDataset(DatasetId::kMorenoHealth, 0.25, 42);
    PATHEST_CHECK(g.ok(), "dataset build failed");
    return new Graph(std::move(*g));
  }();
  return *graph;
}

OrderingPtr BenchOrdering(const std::string& name, size_t k) {
  auto ordering = MakeOrdering(name, BenchGraph(), k);
  PATHEST_CHECK(ordering.ok(), "ordering build failed");
  return std::move(*ordering);
}

void BM_Unrank(benchmark::State& state, const std::string& name) {
  const size_t k = static_cast<size_t>(state.range(0));
  OrderingPtr ordering = BenchOrdering(name, k);
  Rng rng(7);
  std::vector<uint64_t> indexes(1024);
  for (auto& i : indexes) i = rng.NextBounded(ordering->size());
  size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ordering->Unrank(indexes[cursor]));
    cursor = (cursor + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Rank(benchmark::State& state, const std::string& name) {
  const size_t k = static_cast<size_t>(state.range(0));
  OrderingPtr ordering = BenchOrdering(name, k);
  Rng rng(7);
  std::vector<LabelPath> paths;
  for (int i = 0; i < 1024; ++i) {
    paths.push_back(
        ordering->space().CanonicalPath(rng.NextBounded(ordering->size())));
  }
  size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ordering->Rank(paths[cursor]));
    cursor = (cursor + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}

void RegisterAll() {
  for (const char* name :
       {"num-alph", "num-card", "lex-alph", "lex-card", "sum-based"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Rank/") + name).c_str(),
        [name](benchmark::State& s) { BM_Rank(s, name); })
        ->Arg(3)
        ->Arg(6);
    benchmark::RegisterBenchmark(
        (std::string("BM_Unrank/") + name).c_str(),
        [name](benchmark::State& s) { BM_Unrank(s, name); })
        ->Arg(3)
        ->Arg(6);
  }
}

}  // namespace
}  // namespace pathest

int main(int argc, char** argv) {
  pathest::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
