// Reproduces the paper's Table 3: dataset statistics (#edge labels,
// #vertices, #edges, real-world flag) for the four evaluation datasets.
//
// The real datasets (Moreno Health, DBpedia) are synthesized stand-ins with
// the published shape — see DESIGN.md §5; this bench verifies the generated
// graphs actually land on the paper's row values, and prints per-label
// cardinalities as supplementary detail.

#include <cstdio>

#include "bench_util.h"
#include "core/report.h"
#include "graph/graph_stats.h"

namespace pathest {
namespace {

int Run() {
  ReportTable table({"Dataset", "#Edge Labels", "#Vertices", "#Edges",
                     "Real world data", "paper #Vertices", "paper #Edges"});
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    Graph graph = bench::BuildBenchDataset(spec.id);
    GraphStats stats = ComputeGraphStats(graph);
    table.AddRow({spec.name, std::to_string(stats.num_labels),
                  std::to_string(stats.num_vertices),
                  std::to_string(stats.num_edges),
                  spec.real_world ? "yes" : "no",
                  std::to_string(spec.num_vertices),
                  std::to_string(spec.num_edges)});
    std::printf("%s label cardinalities:\n", spec.name.c_str());
    for (LabelId l = 0; l < graph.num_labels(); ++l) {
      std::printf("  %s: %llu\n", graph.labels().Name(l).c_str(),
                  static_cast<unsigned long long>(
                      stats.label_cardinalities[l]));
    }
  }
  std::printf("\nTable 3: datasets\n\n%s\n", table.ToString().c_str());
  bench::DieIf(table.WriteCsv("table3_datasets.csv"), "csv");
  return 0;
}

}  // namespace
}  // namespace pathest

int main() { return pathest::Run(); }
