// Ablation A2: richer base sets (the paper's Section 5 future-work
// direction). Compares sum-based over B = L against the sum-L2 composite
// prototype (B = L_2, cardinality-ranked pieces, greedy splitting) and the
// ideal ordering, on the moreno-like and dbpedia-like datasets.
//
// The hypothesis from the paper's conclusion: L2 base sets capture
// correlations between consecutive labels, which should help most on data
// with strong label correlations (dbpedia-like typed predicates).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"
#include "core/report.h"
#include "ordering/factory.h"

namespace pathest {
namespace {

int Run() {
  const size_t k = bench::SizeFromEnv("PATHEST_K", 4);
  const std::vector<std::string> methods = {"num-card", "sum-based", "sum-L2",
                                            "ideal"};

  for (DatasetId id : {DatasetId::kMorenoHealth, DatasetId::kDbpedia}) {
    const DatasetSpec* spec = nullptr;
    for (const auto& s : AllDatasetSpecs()) {
      if (s.id == id) spec = &s;
    }
    Graph graph = bench::BuildBenchDataset(id);
    SelectivityMap map = bench::ComputeWithProgress(graph, k, spec->name);
    PathSpace space(graph.num_labels(), k);

    std::vector<std::string> header = {"beta"};
    for (const auto& m : methods) header.push_back(m);
    ReportTable table(header);

    for (size_t beta : BetaSweep(space.size(), 6)) {
      std::vector<std::string> row = {std::to_string(beta)};
      for (const auto& method : methods) {
        auto result = MeasureAccuracy(graph, map, method, k, beta,
                                      HistogramType::kVOptimal);
        bench::DieIf(result.status(), method.c_str());
        row.push_back(FormatDouble(result->errors.mean_abs_error, 4));
      }
      table.AddRow(std::move(row));
    }
    std::printf("Ablation A2 [%s, k=%zu, |L_k|=%llu]: mean error rate, "
                "base set L vs L2\n\n%s\n",
                spec->name.c_str(), k,
                static_cast<unsigned long long>(space.size()),
                table.ToString().c_str());
    bench::DieIf(table.WriteCsv("ablation_base_sets_" + spec->name + ".csv"),
                 "csv");
  }
  std::printf("expected shape: sum-L2 between sum-based and ideal, with the "
              "larger gain on the label-correlated dbpedia-like data.\n");
  return 0;
}

}  // namespace
}  // namespace pathest

int main() { return pathest::Run(); }
