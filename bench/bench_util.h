// Shared helpers for the paper-table bench binaries.

#ifndef PATHEST_BENCH_BENCH_UTIL_H_
#define PATHEST_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/datasets.h"
#include "graph/graph.h"
#include "path/selectivity.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

namespace pathest {
namespace bench {

// Terminates the process with a message when a Status/Result failed; benches
// have no meaningful recovery path.
inline void DieIf(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed at %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

// Builds a canned dataset at the PATHEST_SCALE env scale (default: the
// paper's full size) and logs its actual shape.
inline Graph BuildBenchDataset(DatasetId id, uint64_t seed = 42) {
  double scale = ScaleFromEnv();
  auto graph = BuildDataset(id, scale, seed);
  DieIf(graph.status(), "dataset generation");
  return std::move(graph).ValueOrDie();
}

// Computes exact selectivities with a progress line per root label.
inline SelectivityMap ComputeWithProgress(const Graph& graph, size_t k,
                                          const std::string& name) {
  Timer timer;
  SelectivityOptions options;
  options.progress = [&](LabelId root) {
    PATHEST_LOG(Info) << name << ": selectivity root label " << (root + 1)
                      << "/" << graph.num_labels() << " done ("
                      << static_cast<int>(timer.ElapsedSeconds()) << "s)";
  };
  auto map = ComputeSelectivities(graph, k, options);
  DieIf(map.status(), "selectivity computation");
  PATHEST_LOG(Info) << name << ": exact selectivities for k=" << k
                    << " computed in " << timer.ElapsedSeconds() << "s";
  return std::move(map).ValueOrDie();
}

// Reads a size_t env override (e.g. PATHEST_KMAX), with default.
inline size_t SizeFromEnv(const char* name, size_t def) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return def;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || v == 0) return def;
  return static_cast<size_t>(v);
}

}  // namespace bench
}  // namespace pathest

#endif  // PATHEST_BENCH_BENCH_UTIL_H_
