// Shared helpers for the paper-table bench binaries.

#ifndef PATHEST_BENCH_BENCH_UTIL_H_
#define PATHEST_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/datasets.h"
#include "graph/graph.h"
#include "path/selectivity.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

namespace pathest {
namespace bench {

// Terminates the process with a message when a Status/Result failed; benches
// have no meaningful recovery path.
inline void DieIf(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed at %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

// Builds a canned dataset at the PATHEST_SCALE env scale (default: the
// paper's full size) and logs its actual shape.
inline Graph BuildBenchDataset(DatasetId id, uint64_t seed = 42) {
  double scale = ScaleFromEnv();
  auto graph = BuildDataset(id, scale, seed);
  DieIf(graph.status(), "dataset generation");
  return std::move(graph).ValueOrDie();
}

// Reads a size_t env override (e.g. PATHEST_KMAX), with default.
inline size_t SizeFromEnv(const char* name, size_t def) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return def;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || v == 0) return def;
  return static_cast<size_t>(v);
}

// Worker-thread count for selectivity evaluation: PATHEST_THREADS env, or
// 0 = one thread per hardware core (the bench default — benches want the
// fastest build; determinism is unaffected by thread count).
inline size_t ThreadsFromEnv() { return SizeFromEnv("PATHEST_THREADS", 0); }

// Extension-kernel override for selectivity evaluation: PATHEST_KERNEL env
// (auto|sparse|dense), default auto. The map is bit-identical across
// kernels; the knob exists to measure each kernel in isolation.
inline PairKernel KernelFromEnv() {
  const char* env = std::getenv("PATHEST_KERNEL");
  if (env == nullptr || *env == '\0') return PairKernel::kAuto;
  auto kernel = ParsePairKernel(env);
  DieIf(kernel.status(), "PATHEST_KERNEL");
  return *kernel;
}

// Computes exact selectivities with a progress line per root label.
// `num_threads` follows SelectivityOptions semantics (0 = hardware) and
// defaults to the PATHEST_THREADS env override; the extension kernel
// follows PATHEST_KERNEL.
inline SelectivityMap ComputeWithProgress(const Graph& graph, size_t k,
                                          const std::string& name,
                                          size_t num_threads = ThreadsFromEnv()) {
  Timer timer;
  SelectivityOptions options;
  options.num_threads = num_threads;
  options.kernel = KernelFromEnv();
  // Progress callbacks are mutex-serialized by the evaluator, so a plain
  // counter is safe. Count completions rather than echoing the root id:
  // under parallelism roots finish in unspecified order.
  size_t roots_done = 0;
  options.progress = [&](LabelId root) {
    PATHEST_LOG(Info) << name << ": selectivity root " << (root + 1) << " done"
                      << " (" << ++roots_done << "/" << graph.num_labels()
                      << ", " << static_cast<int>(timer.ElapsedSeconds())
                      << "s)";
  };
  auto map = ComputeSelectivities(graph, k, options);
  DieIf(map.status(), "selectivity computation");
  PATHEST_LOG(Info) << name << ": exact selectivities for k=" << k
                    << " computed in " << timer.ElapsedSeconds() << "s";
  return std::move(map).ValueOrDie();
}

}  // namespace bench
}  // namespace pathest

#endif  // PATHEST_BENCH_BENCH_UTIL_H_
