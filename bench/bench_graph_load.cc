// Graph-ingest bench: end-to-end text-to-Graph load (parse + build) of a
// SNAP-scale generated edge list, comparing the streaming pipeline
// (chunked from_chars parse + parallel counting-sort build) against the
// seed path (getline + istringstream per line, global sort via
// BuildReference). Plain binary, no google-benchmark.
//
// --json[=path] writes one JSON object to `path` (default
// BENCH_graph_load.json): the dataset shape, the seed-path time, one row
// per thread count in {1, 2, 4} with the per-stage breakdown (read /
// parse / partition / csr / vertex-major / plane / reverse) and the
// speedup vs the seed path, and the resulting plane kind/bytes. Every
// row's Graph is asserted BIT-IDENTICAL to the seed path's
// (Graph::IdenticalTo) — cross-thread determinism is checked in-bench,
// not assumed. On hosts with fewer cores than a row's thread count the
// row is still recorded (determinism still validated) and the JSON
// carries a "determinism-validated, speedup pending multi-core" caveat.
//
// Scale knobs: PATHEST_SCALE (1.0 = 1.2M edges over 200k vertices),
// PATHEST_REPS (best-of reps per cell, default 3).

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "gen/generator.h"
#include "gen/label_assigner.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "util/timer.h"

namespace pathest {
namespace {

// The seed reader, kept verbatim as the comparison baseline: one
// istringstream per line feeding per-edge AddEdge calls, finalized by the
// global-sort BuildReference.
Result<Graph> SeedReadGraphText(std::istream* in) {
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    uint64_t src = 0;
    uint64_t dst = 0;
    std::string label;
    if (!(ls >> src)) continue;
    if (!(ls >> label >> dst)) {
      return Status::IOError("malformed edge at line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    if (src > UINT32_MAX || dst > UINT32_MAX) {
      return Status::OutOfRange("vertex id exceeds 32 bits at line " +
                                std::to_string(line_no));
    }
    builder.AddEdge(static_cast<VertexId>(src), label,
                    static_cast<VertexId>(dst));
  }
  return builder.BuildReference();
}

struct ThreadRow {
  size_t threads;
  double load_ms;
  GraphLoadStats stats;
  double speedup_vs_seed;
  bool identical;
};

int Run(bool json_mode, const std::string& json_path) {
  const double scale = ScaleFromEnv();
  const size_t reps = bench::SizeFromEnv("PATHEST_REPS", 3);

  ErdosRenyiParams params;
  params.num_vertices = std::max<size_t>(
      500, static_cast<size_t>(200000.0 * scale));
  params.num_edges = std::max<size_t>(
      3000, static_cast<size_t>(1200000.0 * scale));
  params.seed = 42;
  UniformLabelAssigner labels(6);
  auto generated = GenerateErdosRenyi(params, &labels);
  bench::DieIf(generated.status(), "edge-list generation");

  std::ostringstream serialized;
  bench::DieIf(WriteGraphText(*generated, &serialized), "serialization");
  const std::string text = serialized.str();
  std::printf("graph-load: |V|=%zu |E|=%zu |L|=%zu, %.1f MB of text, "
              "best of %zu reps\n",
              generated->num_vertices(), generated->num_edges(),
              generated->num_labels(),
              static_cast<double>(text.size()) / (1024.0 * 1024.0), reps);

  // Seed path: line-at-a-time istringstream parse + global-sort build.
  double seed_ms = 0.0;
  Graph seed_graph;
  for (size_t rep = 0; rep < reps; ++rep) {
    std::istringstream in(text);
    Timer timer;
    auto g = SeedReadGraphText(&in);
    const double ms = timer.ElapsedMillis();
    bench::DieIf(g.status(), "seed-path load");
    if (rep == 0 || ms < seed_ms) seed_ms = ms;
    if (rep == 0) seed_graph = std::move(g).ValueOrDie();
  }
  std::printf("  seed path (istringstream + global sort): %.1f ms\n",
              seed_ms);

  const size_t cores = std::thread::hardware_concurrency();
  std::vector<ThreadRow> rows;
  for (size_t threads : {1u, 2u, 4u}) {
    GraphLoadOptions options;
    options.num_threads = threads;
    ThreadRow row{threads, 0.0, GraphLoadStats{}, 0.0, false};
    for (size_t rep = 0; rep < reps; ++rep) {
      std::istringstream in(text);
      GraphLoadStats stats;
      Timer timer;
      auto g = ReadGraphText(&in, options, &stats);
      const double ms = timer.ElapsedMillis();
      bench::DieIf(g.status(), "streaming load");
      if (rep == 0 || ms < row.load_ms) {
        row.load_ms = ms;
        row.stats = stats;
      }
      if (rep == 0) {
        // Bit-identity vs the seed path, asserted in-bench: CSRs,
        // vertex-major arrays, and plane all equal at every thread count.
        row.identical = g->IdenticalTo(seed_graph);
        PATHEST_CHECK(row.identical, "streaming load differs from seed path");
      }
    }
    row.speedup_vs_seed = row.load_ms > 0.0 ? seed_ms / row.load_ms : 0.0;
    rows.push_back(row);
    std::printf("  threads=%zu: %.1f ms (%.2fx vs seed; read %.1f, parse "
                "%.1f [%zu chunks], build %.1f = partition %.1f + csr %.1f "
                "+ vm %.1f + plane %.1f), identical=%s\n",
                threads, row.load_ms, row.speedup_vs_seed, row.stats.read_ms,
                row.stats.parse_ms, row.stats.num_chunks,
                row.stats.build.total_ms, row.stats.build.partition_ms,
                row.stats.build.csr_ms, row.stats.build.vm_ms,
                row.stats.build.plane_ms, row.identical ? "yes" : "no");
  }
  const GraphBuildStats& plane = rows.front().stats.build;
  std::printf("  plane: kind=%s rows=%zu bytes=%zu hub_threshold=%llu\n",
              PlaneKindName(plane.plane_kind), plane.plane_rows,
              plane.plane_bytes,
              static_cast<unsigned long long>(plane.hub_degree_threshold));
  const bool multicore = cores >= 4;
  if (!multicore) {
    std::printf("  note: %zu hardware core(s) — thread rows are "
                "determinism-validated, speedup pending multi-core\n",
                cores);
  }

  if (!json_mode) return 0;
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"dataset\": \"snap-er\",\n"
               "  \"vertices\": %zu,\n"
               "  \"edges\": %zu,\n"
               "  \"labels\": %zu,\n"
               "  \"text_bytes\": %zu,\n"
               "  \"reps\": %zu,\n"
               "  \"hardware_cores\": %zu,\n"
               "  \"seed_path_ms\": %.3f,\n",
               generated->num_vertices(), generated->num_edges(),
               generated->num_labels(), text.size(), reps, cores, seed_ms);
  std::fprintf(out, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ThreadRow& r = rows[i];
    std::fprintf(
        out,
        "    {\"threads\": %zu, \"load_ms\": %.3f, \"speedup_vs_seed\": "
        "%.3f, \"identical_to_seed\": %s, \"read_ms\": %.3f, \"parse_ms\": "
        "%.3f, \"parse_chunks\": %zu, \"build_ms\": %.3f, \"partition_ms\": "
        "%.3f, \"csr_ms\": %.3f, \"vertex_major_ms\": %.3f, \"plane_ms\": "
        "%.3f}%s\n",
        r.threads, r.load_ms, r.speedup_vs_seed,
        r.identical ? "true" : "false", r.stats.read_ms, r.stats.parse_ms,
        r.stats.num_chunks, r.stats.build.total_ms,
        r.stats.build.partition_ms, r.stats.build.csr_ms, r.stats.build.vm_ms,
        r.stats.build.plane_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"plane\": {\"kind\": \"%s\", \"rows\": %zu, \"bytes\": "
               "%zu, \"hub_degree_threshold\": %llu},\n",
               PlaneKindName(plane.plane_kind), plane.plane_rows,
               plane.plane_bytes,
               static_cast<unsigned long long>(plane.hub_degree_threshold));
  std::fprintf(out, "  \"caveat\": \"%s\"\n",
               multicore
                   ? ""
                   : "thread rows recorded on a single-core host: "
                     "determinism-validated, speedup pending multi-core");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace pathest

int main(int argc, char** argv) {
  bool json_mode = false;
  std::string json_path = "BENCH_graph_load.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_mode = true;
      json_path = arg.substr(7);
    }
  }
  return pathest::Run(json_mode, json_path);
}
