// Reproduces the paper's Section 3.4 worked example: Table 1 (summed ranks)
// and Table 2 (the five orderings over the artificial 3-label dataset with
// cardinalities 20 / 100 / 80, k = 2).
//
// Output: both tables, printed in the paper's layout, plus CSV files
// table1_summed_ranks.csv and table2_orderings.csv.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/report.h"
#include "graph/graph_builder.h"
#include "ordering/factory.h"
#include "ordering/ranking.h"

namespace pathest {
namespace {

Graph ArtificialGraph() {
  GraphBuilder builder;
  VertexId next = 0;
  // Label cardinalities from Section 3.4: 1 -> 20, 2 -> 100, 3 -> 80.
  const std::vector<std::pair<std::string, uint64_t>> cards = {
      {"1", 20}, {"2", 100}, {"3", 80}};
  for (const auto& [name, card] : cards) {
    LabelId l = builder.AddLabel(name);
    for (uint64_t i = 0; i < card; ++i) {
      builder.AddEdge(next, l, next + 1);
      next += 2;
    }
  }
  auto graph = builder.Build();
  bench::DieIf(graph.status(), "artificial graph");
  return std::move(graph).ValueOrDie();
}

int Run() {
  Graph graph = ArtificialGraph();
  const size_t k = 2;
  PathSpace space(graph.num_labels(), k);

  // ---- Table 1: summed ranks under cardinality ranking. ----
  std::vector<uint64_t> cards;
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    cards.push_back(graph.LabelCardinality(l));
  }
  LabelRanking ranking = LabelRanking::Cardinality(graph.labels(), cards);
  ReportTable table1({"label path", "summed rank"});
  space.ForEach([&](const LabelPath& p) {
    uint64_t sum = 0;
    for (size_t i = 0; i < p.length(); ++i) sum += ranking.RankOf(p.label(i));
    table1.AddRow({p.ToString(graph.labels()), std::to_string(sum)});
  });
  std::printf("Table 1: summed ranks (cardinality ranking; 1->20, 2->100, "
              "3->80)\n\n%s\n", table1.ToString().c_str());
  bench::DieIf(table1.WriteCsv("table1_summed_ranks.csv"), "csv");

  // ---- Table 2: label paths arranged by each ordering method. ----
  std::vector<std::string> header = {"index"};
  std::vector<OrderingPtr> orderings;
  for (const std::string& name : PaperOrderingNames()) {
    auto ordering = MakeOrdering(name, graph, k);
    bench::DieIf(ordering.status(), name.c_str());
    header.push_back(name);
    orderings.push_back(std::move(*ordering));
  }
  ReportTable table2(header);
  for (uint64_t i = 0; i < space.size(); ++i) {
    std::vector<std::string> row = {std::to_string(i)};
    for (const auto& ordering : orderings) {
      row.push_back(ordering->Unrank(i).ToString(graph.labels()));
    }
    table2.AddRow(std::move(row));
  }
  std::printf("Table 2: ordered label paths per ordering method\n\n%s\n",
              table2.ToString().c_str());
  bench::DieIf(table2.WriteCsv("table2_orderings.csv"), "csv");
  return 0;
}

}  // namespace
}  // namespace pathest

int main() { return pathest::Run(); }
