// Microbenchmark M4: the query-time serving path — legacy virtual
// estimation (PathHistogram::Estimate: virtual Rank + binary search over the
// 32-byte diagnostic Bucket array) versus the serving fast path
// (core/estimator.h: type-tagged scratch Rank + flat SoA bucket lookup),
// plus batched-serving throughput.
//
// Setup mirrors the paper's Table 4 shape without the exact-selectivity
// pipeline: a moreno-shaped label set (6 labels, skewed cardinalities) at
// k = 6 (|L_6| = 55 986), a synthetic zipf frequency sequence over the
// domain, ONE v-optimal histogram at beta = n/128 (Table 4's smallest
// sweep level) shared by every ordering via PathHistogram::FromParts, and a
// uniformly sampled query workload.
//
// Per ordering it reports, best of PATHEST_REPS interleaved runs:
//   * legacy_ns / fast_ns — ns per single-path estimate on each path, with
//     bit-identity of every estimate asserted before timing;
//   * p50_ns / p99_ns    — fast-path latency distribution over 256-query
//     chunks (per-query clock reads would dwarf the ~100ns queries);
//   * batch1_mqps / batchN_mqps — EstimateBatch / EstimateBatchParallel
//     throughput in million paths/sec at 1 and hardware threads, with the
//     parallel output asserted bit-identical to the serial one.
//
// --json[=path] writes one object per ordering (default
// BENCH_estimation.json). Knobs: PATHEST_SCALE (workload size),
// PATHEST_REPS (default 5), PATHEST_K, PATHEST_BETA (bucket override),
// PATHEST_THREADS (parallel-batch workers, 0 = hardware).

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/estimator.h"
#include "core/path_histogram.h"
#include "core/report.h"
#include "engine/thread_pool.h"
#include "gen/datasets.h"
#include "histogram/builders.h"
#include "ordering/factory.h"
#include "util/random.h"
#include "util/timer.h"

namespace pathest {
namespace {

constexpr size_t kChunk = 256;  // queries per latency sample

std::vector<uint64_t> SyntheticZipfDistribution(size_t n, uint64_t seed) {
  std::vector<uint64_t> data(n, 0);
  Rng rng(seed);
  ZipfDistribution zipf(n, 1.0);
  const size_t samples = 20 * n;
  for (size_t i = 0; i < samples; ++i) ++data[zipf.Sample(&rng)];
  return data;
}

struct Row {
  std::string ordering;
  size_t beta = 0;
  uint64_t n = 0;
  size_t queries = 0;
  double legacy_ns = 0.0;
  double fast_ns = 0.0;
  double speedup = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double batch1_mqps = 0.0;
  double batchn_mqps = 0.0;
  size_t threads = 1;
  size_t resident_bytes = 0;
};

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(
                                               samples->size() - 1));
  return (*samples)[i];
}

Row MeasureOrdering(const Graph& graph, const std::string& name, size_t k,
                    const Histogram& histogram,
                    const std::vector<LabelPath>& workload, size_t reps,
                    size_t batch_threads) {
  auto ordering = MakeOrdering(name, graph, k);
  bench::DieIf(ordering.status(), "ordering build");
  auto legacy = PathHistogram::FromParts(std::move(*ordering), histogram,
                                         HistogramType::kVOptimal);
  bench::DieIf(legacy.status(), "PathHistogram::FromParts");
  const Estimator estimator(*legacy);

  Row row;
  row.ordering = legacy->ordering().name();
  row.beta = histogram.num_buckets();
  row.n = histogram.domain_size();
  row.queries = workload.size();
  row.threads = batch_threads;
  row.resident_bytes = estimator.ResidentBytes();

  // Identity first: the fast path must be a pure speedup. Serial batch,
  // parallel batch, and per-path fast estimates must all match the legacy
  // estimate bit for bit.
  std::vector<double> expect(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    expect[i] = legacy->Estimate(workload[i]);
  }
  {
    RankScratch scratch;
    std::vector<double> got(workload.size());
    estimator.EstimateBatch(workload, got);
    std::vector<double> got_par(workload.size());
    estimator.EstimateBatchParallel(workload, got_par, batch_threads);
    for (size_t i = 0; i < workload.size(); ++i) {
      if (expect[i] != got[i] || expect[i] != got_par[i] ||
          expect[i] != estimator.Estimate(workload[i], scratch)) {
        std::fprintf(stderr, "fast/legacy estimate mismatch: %s query %zu\n",
                     row.ordering.c_str(), i);
        std::exit(1);
      }
    }
  }

  std::vector<double> chunk_ns;
  chunk_ns.reserve(reps * (workload.size() / kChunk + 1));
  double sink = 0.0;
  // Interleave the two sides' reps so machine jitter drifts into both
  // minima equally instead of biasing whichever block ran second.
  for (size_t rep = 0; rep < reps; ++rep) {
    {
      Timer timer;
      for (const LabelPath& path : workload) sink += legacy->Estimate(path);
      const double ns = static_cast<double>(timer.ElapsedNanos()) /
                        static_cast<double>(workload.size());
      if (rep == 0 || ns < row.legacy_ns) row.legacy_ns = ns;
    }
    {
      RankScratch scratch;
      scratch.Reserve(graph.num_labels());
      Timer total;
      for (size_t begin = 0; begin < workload.size(); begin += kChunk) {
        const size_t end = std::min(begin + kChunk, workload.size());
        Timer chunk;
        for (size_t i = begin; i < end; ++i) {
          sink += estimator.Estimate(workload[i], scratch);
        }
        chunk_ns.push_back(static_cast<double>(chunk.ElapsedNanos()) /
                           static_cast<double>(end - begin));
      }
      const double ns = static_cast<double>(total.ElapsedNanos()) /
                        static_cast<double>(workload.size());
      if (rep == 0 || ns < row.fast_ns) row.fast_ns = ns;
    }
    {
      std::vector<double> out(workload.size());
      Timer timer;
      estimator.EstimateBatch(workload, out);
      const double mqps = static_cast<double>(workload.size()) * 1e3 /
                          static_cast<double>(timer.ElapsedNanos());
      if (mqps > row.batch1_mqps) row.batch1_mqps = mqps;
      sink += out[0];
    }
    {
      std::vector<double> out(workload.size());
      Timer timer;
      estimator.EstimateBatchParallel(workload, out, batch_threads);
      const double mqps = static_cast<double>(workload.size()) * 1e3 /
                          static_cast<double>(timer.ElapsedNanos());
      if (mqps > row.batchn_mqps) row.batchn_mqps = mqps;
      sink += out[0];
    }
  }
  row.speedup = row.fast_ns > 0.0 ? row.legacy_ns / row.fast_ns : 0.0;
  row.p50_ns = Percentile(&chunk_ns, 0.50);
  row.p99_ns = Percentile(&chunk_ns, 0.99);
  if (sink == -1.0) row.queries += 1;  // defeat dead-code elimination
  return row;
}

int Run(bool json_mode, const std::string& json_path) {
  const double scale = ScaleFromEnv();
  const size_t reps = bench::SizeFromEnv("PATHEST_REPS", 5);
  const size_t k = bench::SizeFromEnv("PATHEST_K", 6);
  const size_t batch_threads = bench::ThreadsFromEnv();
  const size_t resolved_threads =
      batch_threads == 0 ? ThreadPool::DefaultThreads() : batch_threads;

  Graph graph = bench::BuildBenchDataset(DatasetId::kMorenoHealth, 42);
  PathSpace space(graph.num_labels(), k);
  const uint64_t n = space.size();
  const size_t beta = bench::SizeFromEnv(
      "PATHEST_BETA", std::max<size_t>(2, static_cast<size_t>(n / 128)));

  std::vector<uint64_t> dist = SyntheticZipfDistribution(n, 42);
  auto histogram = BuildHistogram(HistogramType::kVOptimal, dist, beta);
  bench::DieIf(histogram.status(), "v-optimal build");

  const size_t num_queries = std::max<size_t>(
      1024, static_cast<size_t>(200000.0 * scale));
  Rng rng(7);
  std::vector<LabelPath> workload;
  workload.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    workload.push_back(space.CanonicalPath(rng.NextBounded(n)));
  }

  std::printf("estimation serving path: |L|=%zu k=%zu |L_k|=%llu beta=%zu, "
              "%zu queries, best of %zu reps, batch threads %zu\n\n",
              graph.num_labels(), k, static_cast<unsigned long long>(n), beta,
              num_queries, reps, resolved_threads);

  std::vector<std::string> orderings = PaperOrderingNames();
  orderings.push_back("gray-card");
  orderings.push_back("random");

  std::vector<Row> rows;
  ReportTable table({"ordering", "legacy_ns", "fast_ns", "speedup", "p50_ns",
                     "p99_ns", "batch1_mqps", "batchN_mqps", "est_bytes"});
  for (const std::string& name : orderings) {
    Row row = MeasureOrdering(graph, name, k, *histogram, workload, reps,
                              batch_threads);
    row.threads = resolved_threads;
    std::printf("  %-10s legacy=%7.1fns fast=%7.1fns speedup=%5.2fx "
                "p50=%7.1fns p99=%7.1fns batch1=%6.2fMq/s batchN=%6.2fMq/s\n",
                row.ordering.c_str(), row.legacy_ns, row.fast_ns, row.speedup,
                row.p50_ns, row.p99_ns, row.batch1_mqps, row.batchn_mqps);
    std::fflush(stdout);
    table.AddRow({row.ordering, FormatDouble(row.legacy_ns, 1),
                  FormatDouble(row.fast_ns, 1), FormatDouble(row.speedup, 2),
                  FormatDouble(row.p50_ns, 1), FormatDouble(row.p99_ns, 1),
                  FormatDouble(row.batch1_mqps, 2),
                  FormatDouble(row.batchn_mqps, 2),
                  std::to_string(row.resident_bytes)});
    rows.push_back(std::move(row));
  }
  std::printf("\n%s\n", table.ToString().c_str());

  if (json_mode) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          out,
          "  {\"ordering\": \"%s\", \"beta\": %zu, \"n\": %llu, "
          "\"queries\": %zu, \"legacy_ns\": %.1f, \"fast_ns\": %.1f, "
          "\"speedup\": %.2f, \"p50_ns\": %.1f, \"p99_ns\": %.1f, "
          "\"batch1_mqps\": %.2f, \"batchN_mqps\": %.2f, \"threads\": %zu, "
          "\"est_bytes\": %zu}%s\n",
          r.ordering.c_str(), r.beta, static_cast<unsigned long long>(r.n),
          r.queries, r.legacy_ns, r.fast_ns, r.speedup, r.p50_ns, r.p99_ns,
          r.batch1_mqps, r.batchn_mqps, r.threads, r.resident_bytes,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    std::printf("wrote %zu rows to %s\n", rows.size(), json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace pathest

int main(int argc, char** argv) {
  bool json_mode = false;
  std::string json_path = "BENCH_estimation.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_mode = true;
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--json[=path]]\n", argv[0]);
      return 2;
    }
  }
  return pathest::Run(json_mode, json_path);
}
