// Ablation A3: quality of the scalable greedy-merge V-optimal builder
// against the exact O(n beta log n) divide-and-conquer dynamic program, on
// domains small enough for the DP. Reports the SSE ratio (greedy / exact)
// and the resulting mean |err| of both, under the sum-based ordering.
//
// This justifies the substitution documented in DESIGN.md §3: at paper scale
// the DP is infeasible, and this ablation shows the greedy builder's SSE is
// within a few percent of optimal on realistic path-frequency distributions.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/distribution.h"
#include "core/error.h"
#include "core/report.h"
#include "histogram/builders.h"
#include "ordering/factory.h"

namespace pathest {
namespace {

double MeanAbsErrorOf(const Histogram& h, const std::vector<uint64_t>& dist) {
  double total = 0.0;
  for (const Bucket& b : h.buckets()) {
    double mean = b.Mean();
    for (uint64_t i = b.begin; i < b.end; ++i) {
      total += AbsoluteErrorRate(mean, static_cast<double>(dist[i]));
    }
  }
  return total / static_cast<double>(dist.size());
}

int Run() {
  // k = 4 over 6 labels -> |L_4| = 1554, comfortably within DP range.
  const size_t k = bench::SizeFromEnv("PATHEST_K", 4);
  Graph graph = bench::BuildBenchDataset(DatasetId::kMorenoHealth);
  SelectivityMap map = bench::ComputeWithProgress(graph, k, "moreno");

  auto ordering = MakeOrdering("sum-based", graph, k);
  bench::DieIf(ordering.status(), "ordering");
  auto dist = BuildDistribution(map, **ordering);
  bench::DieIf(dist.status(), "distribution");
  const size_t n = dist->size();

  // Shared stats feed both builders; the greedy side of the whole beta
  // sweep is ONE merge run (sweep engine), the exact side one
  // divide-and-conquer DP per beta.
  DistributionStats stats(*dist);
  std::vector<size_t> betas;
  for (size_t shift : {1u, 2u, 3u, 4u, 5u, 6u}) {
    if ((n >> shift) == 0) break;
    betas.push_back(n >> shift);
  }
  auto greedy_sweep = BuildVOptimalGreedySweep(stats, betas);
  bench::DieIf(greedy_sweep.status(), "greedy sweep");

  ReportTable table({"beta", "sse_exact", "sse_greedy", "sse_ratio",
                     "err_exact", "err_greedy"});
  for (size_t b = 0; b < betas.size(); ++b) {
    const size_t beta = betas[b];
    auto exact = BuildVOptimalExact(stats, beta);
    bench::DieIf(exact.status(), "exact DP");
    const Histogram& greedy = (*greedy_sweep)[b];
    double ratio = exact->TotalSse() == 0.0
                       ? 1.0
                       : greedy.TotalSse() / exact->TotalSse();
    table.AddRow({std::to_string(beta), FormatDouble(exact->TotalSse(), 6),
                  FormatDouble(greedy.TotalSse(), 6),
                  FormatDouble(ratio, 4),
                  FormatDouble(MeanAbsErrorOf(*exact, *dist), 4),
                  FormatDouble(MeanAbsErrorOf(greedy, *dist), 4)});
  }
  std::printf("Ablation A3: greedy-merge vs exact-DP V-optimal "
              "(moreno-like, k=%zu, n=%zu, sum-based ordering)\n\n%s\n",
              k, n, table.ToString().c_str());
  bench::DieIf(table.WriteCsv("ablation_voptimal.csv"), "csv");
  return 0;
}

}  // namespace
}  // namespace pathest

int main() { return pathest::Run(); }
