// Reproduces the paper's Table 4: average estimation execution time in a
// V-optimal histogram under each ordering method, for the bucket sweep
// beta = n/2, n/4, ..., n/128 on the Moreno Health dataset at k = 6.
//
// Notes vs the paper: the absolute numbers differ (the paper measures a Java
// implementation and reports milliseconds; this is C++ and reports
// microseconds per query), but the SHAPE must match — sum-based estimation
// is slower than the closed-form orderings because its ranking function
// walks the three-stage combinatorial partitioning.
//
// Measured on the SERVING fast path (core/estimator.h: type-tagged scratch
// Rank + flat SoA bucket lookup) — the per-query cost a deployed estimator
// pays. The legacy virtual path is measured against it by
// bench_micro_estimation. The est_bytes column is the serving-resident
// footprint of each row's estimator (flat bucket index; identical across
// orderings at equal beta).

#include <cstdio>
#include <utility>

#include "bench_util.h"
#include "core/experiment.h"
#include "core/report.h"
#include "ordering/factory.h"

namespace pathest {
namespace {

int Run() {
  const size_t k = bench::SizeFromEnv("PATHEST_K", 6);
  const size_t reps = bench::SizeFromEnv("PATHEST_REPS", 20);

  Graph graph = bench::BuildBenchDataset(DatasetId::kMorenoHealth);
  SelectivityOptions sel_options;
  sel_options.num_threads = bench::ThreadsFromEnv();
  sel_options.kernel = bench::KernelFromEnv();
  auto build = MeasureSelectivityBuild(graph, k, sel_options);
  bench::DieIf(build.status(), "selectivity computation");
  std::printf("selectivity build profile (ground truth for the sweep):\n%s\n",
              SelectivityBuildReport(graph, *build).ToString().c_str());
  SelectivityMap map = std::move(build->map);

  PathSpace space(graph.num_labels(), k);
  std::printf("Table 4: average estimation time per query (microseconds), "
              "V-optimal, k=%zu, |L_k|=%llu, %zu repetitions of the full "
              "workload\n\n",
              k, static_cast<unsigned long long>(space.size()), reps);

  std::vector<std::string> header = {"beta"};
  for (const std::string& name : PaperOrderingNames()) header.push_back(name);
  header.push_back("est_bytes");
  ReportTable table(header);

  // The whole grid in one call: per ordering, ONE greedy-merge run builds
  // every beta's histogram (sweep engine); replay timing stays serial
  // (num_threads = 1) so per-query wall times are not polluted by
  // concurrent rows.
  const std::vector<size_t> betas = BetaSweep(space.size(), 7);
  const std::vector<std::string>& orderings = PaperOrderingNames();
  auto grid = MeasureTimingSweep(graph, map, orderings, k, betas,
                                 HistogramType::kVOptimal, reps,
                                 /*num_threads=*/1);
  bench::DieIf(grid.status(), "timing sweep");
  for (size_t b = 0; b < betas.size(); ++b) {
    std::vector<std::string> row = {std::to_string(betas[b])};
    for (size_t o = 0; o < orderings.size(); ++o) {
      row.push_back(FormatDouble(
          (*grid)[o * betas.size() + b].avg_estimate_us, 4));
    }
    row.push_back(std::to_string((*grid)[b].estimator_bytes));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  bench::DieIf(table.WriteCsv("table4_estimation_time_us.csv"), "csv");

  std::printf("expected shape: sum-based is slower than num-*/lex-* at every "
              "beta (paper: ~20%% slower).\n");
  return 0;
}

}  // namespace
}  // namespace pathest

int main() { return pathest::Run(); }
