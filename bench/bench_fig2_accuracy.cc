// Reproduces the paper's Figure 2: mean error rate of estimation for the
// five domain-ordering techniques on a V-optimal k-path histogram, across
// all four datasets, k in [2, 6], and the bucket sweep beta = n/2 ... n/128.
//
// Every (dataset, k) block runs through MeasureAccuracySweep: per ordering
// the distribution is materialized once, ONE greedy-merge run produces the
// whole β sweep's histograms (see histogram/builders.h), and independent
// orderings fan out over the engine ThreadPool (PATHEST_THREADS, 0 =
// hardware; the grid is bit-identical at any thread count). Expected shape
// per the paper: sum-based dominates (dramatically on the synthetic
// SNAP-ER / SNAP-FF data, especially at small beta); card-ranked variants
// beat alph-ranked ones; error rises as beta shrinks.
//
// Output: one sub-table per (dataset, k) plus fig2_accuracy.csv with every
// point. Runtime is dominated by exact selectivity computation on the two
// dense datasets (minutes at full scale); set PATHEST_SCALE=0.25 or
// PATHEST_KMAX=4 for a quick pass.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"
#include "core/report.h"
#include "histogram/builders.h"
#include "ordering/factory.h"
#include "util/csv.h"

namespace pathest {
namespace {

int Run() {
  const size_t kmax = bench::SizeFromEnv("PATHEST_KMAX", 6);
  const size_t kmin = bench::SizeFromEnv("PATHEST_KMIN", 2);

  CsvWriter csv;
  bench::DieIf(csv.Open("fig2_accuracy.csv",
                        {"dataset", "k", "beta", "ordering",
                         "mean_abs_error"}),
               "csv open");

  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    Graph graph = bench::BuildBenchDataset(spec.id);
    SelectivityMap map = bench::ComputeWithProgress(graph, kmax, spec.name);

    for (size_t k = kmin; k <= kmax; ++k) {
      PathSpace space(graph.num_labels(), k);
      std::vector<size_t> betas = BetaSweep(space.size(), 7);
      const std::vector<std::string>& orderings = PaperOrderingNames();

      auto grid =
          MeasureAccuracySweep(graph, map, orderings, k, betas,
                               HistogramType::kVOptimal,
                               bench::ThreadsFromEnv());
      bench::DieIf(grid.status(), "accuracy sweep");

      for (size_t o = 0; o < orderings.size(); ++o) {
        for (size_t b = 0; b < betas.size(); ++b) {
          const AccuracyResult& cell = (*grid)[o * betas.size() + b];
          bench::DieIf(
              csv.WriteRow({spec.name, std::to_string(k),
                            std::to_string(betas[b]), orderings[o],
                            FormatDouble(cell.errors.mean_abs_error, 6)}),
              "csv row");
        }
      }

      std::vector<std::string> header = {"beta"};
      for (const auto& name : orderings) header.push_back(name);
      ReportTable table(header);
      for (size_t b = 0; b < betas.size(); ++b) {
        std::vector<std::string> row = {std::to_string(betas[b])};
        for (size_t o = 0; o < orderings.size(); ++o) {
          row.push_back(FormatDouble(
              (*grid)[o * betas.size() + b].errors.mean_abs_error, 4));
        }
        table.AddRow(std::move(row));
      }
      std::printf("Figure 2 [%s, k=%zu, |L_k|=%llu]: mean error rate, "
                  "V-optimal\n\n%s\n",
                  spec.name.c_str(), k,
                  static_cast<unsigned long long>(space.size()),
                  table.ToString().c_str());
      std::fflush(stdout);
    }
  }
  bench::DieIf(csv.Close(), "csv close");
  std::printf("wrote fig2_accuracy.csv\n");
  return 0;
}

}  // namespace
}  // namespace pathest

int main() { return pathest::Run(); }
