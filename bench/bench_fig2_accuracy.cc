// Reproduces the paper's Figure 2: mean error rate of estimation for the
// five domain-ordering techniques on a V-optimal k-path histogram, across
// all four datasets, k in [2, 6], and the bucket sweep beta = n/2 ... n/128.
//
// For every (dataset, k, ordering) the distribution D[i] = f(Unrank(i)) is
// materialized once; each beta then builds one V-optimal histogram and
// averages |err(ℓ)| (Formula 6) over the whole domain. Expected shape per
// the paper: sum-based dominates (dramatically on the synthetic SNAP-ER /
// SNAP-FF data, especially at small beta); card-ranked variants beat
// alph-ranked ones; error rises as beta shrinks.
//
// Output: one sub-table per (dataset, k) plus fig2_accuracy.csv with every
// point. Runtime is dominated by exact selectivity computation on the two
// dense datasets (minutes at full scale); set PATHEST_SCALE=0.25 or
// PATHEST_KMAX=4 for a quick pass.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/distribution.h"
#include "core/error.h"
#include "core/experiment.h"
#include "core/report.h"
#include "histogram/builders.h"
#include "ordering/factory.h"
#include "util/csv.h"
#include "util/timer.h"

namespace pathest {
namespace {

// Mean |err| of a beta-bucket V-optimal histogram over distribution D.
double MeanAbsError(const std::vector<uint64_t>& dist, size_t beta) {
  auto histogram = BuildVOptimalGreedy(dist, beta);
  bench::DieIf(histogram.status(), "v-optimal build");
  double total = 0.0;
  // Walk buckets sequentially instead of binary-searching per index.
  for (const Bucket& b : histogram->buckets()) {
    double mean = b.Mean();
    for (uint64_t i = b.begin; i < b.end; ++i) {
      total += AbsoluteErrorRate(mean, static_cast<double>(dist[i]));
    }
  }
  return total / static_cast<double>(dist.size());
}

int Run() {
  const size_t kmax = bench::SizeFromEnv("PATHEST_KMAX", 6);
  const size_t kmin = bench::SizeFromEnv("PATHEST_KMIN", 2);

  CsvWriter csv;
  bench::DieIf(csv.Open("fig2_accuracy.csv",
                        {"dataset", "k", "beta", "ordering",
                         "mean_abs_error"}),
               "csv open");

  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    Graph graph = bench::BuildBenchDataset(spec.id);
    SelectivityMap map = bench::ComputeWithProgress(graph, kmax, spec.name);

    for (size_t k = kmin; k <= kmax; ++k) {
      PathSpace space(graph.num_labels(), k);
      std::vector<size_t> betas = BetaSweep(space.size(), 7);

      std::vector<std::string> header = {"beta"};
      for (const auto& name : PaperOrderingNames()) header.push_back(name);
      ReportTable table(header);
      // rows[beta_idx][ordering_idx]
      std::vector<std::vector<double>> cells(
          betas.size(), std::vector<double>(PaperOrderingNames().size()));

      for (size_t o = 0; o < PaperOrderingNames().size(); ++o) {
        const std::string& name = PaperOrderingNames()[o];
        auto ordering = MakeOrdering(name, graph, k);
        bench::DieIf(ordering.status(), name.c_str());
        auto dist = BuildDistribution(map, **ordering);
        bench::DieIf(dist.status(), "distribution");
        for (size_t b = 0; b < betas.size(); ++b) {
          cells[b][o] = MeanAbsError(*dist, betas[b]);
          bench::DieIf(
              csv.WriteRow({spec.name, std::to_string(k),
                            std::to_string(betas[b]), name,
                            FormatDouble(cells[b][o], 6)}),
              "csv row");
        }
      }
      for (size_t b = 0; b < betas.size(); ++b) {
        std::vector<std::string> row = {std::to_string(betas[b])};
        for (double v : cells[b]) row.push_back(FormatDouble(v, 4));
        table.AddRow(std::move(row));
      }
      std::printf("Figure 2 [%s, k=%zu, |L_k|=%llu]: mean error rate, "
                  "V-optimal\n\n%s\n",
                  spec.name.c_str(), k,
                  static_cast<unsigned long long>(space.size()),
                  table.ToString().c_str());
      std::fflush(stdout);
    }
  }
  bench::DieIf(csv.Close(), "csv close");
  std::printf("wrote fig2_accuracy.csv\n");
  return 0;
}

}  // namespace
}  // namespace pathest

int main() { return pathest::Run(); }
